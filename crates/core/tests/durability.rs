//! Durability: write-ahead logging, fault injection, and crash-recovery
//! equivalence.
//!
//! The contract under test: every structural mutation is logged before
//! it is applied, so for ANY crash point — any byte prefix of the log —
//! [`AdaptiveClusterIndex::recover`] truncates the torn tail and
//! rebuilds an index that is decision- and answer-identical to one that
//! executed the surviving operation prefix directly. Faults injected by
//! the deterministic [`FaultInjector`] (torn writes, ENOSPC, flush
//! failures, crashes) must surface as typed errors without corrupting
//! the in-memory index.

use std::collections::HashMap;
use std::path::PathBuf;

use acx_core::{AdaptiveClusterIndex, IndexConfig, IndexError, ReorgMode, StatsLayout};
use acx_geom::{HyperRect, ObjectId, Scalar, SpatialQuery};
use acx_storage::{
    BackingStore, FaultInjector, FaultPlan, FlushPolicy, MemBacking, Wal, WalRecord,
};
use proptest::prelude::*;

fn temp_path(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "acx-durability-{tag}-{}-{:?}.acx",
        std::process::id(),
        std::thread::current().id()
    ));
    path
}

fn config_2d() -> IndexConfig {
    let mut config = IndexConfig::memory(2);
    config.reorg_period = 17; // trigger automatic reorgs mid-stream
    config.min_epoch_queries = 5;
    config
}

fn mem_wal(dims: usize, policy: FlushPolicy) -> Wal {
    Wal::create(Box::new(MemBacking::new()), policy, dims).unwrap()
}

/// Detaches the WAL and returns its full byte image.
fn wal_bytes(index: &mut AdaptiveClusterIndex) -> Vec<u8> {
    let mut store = index.detach_wal().expect("wal attached").into_store();
    store.read_durable().unwrap()
}

// ---------------------------------------------------------------------
// Operation streams (shared by the proptest harnesses)
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, Vec<(Scalar, Scalar)>),
    Remove(u32),
    Update(u32, Vec<(Scalar, Scalar)>),
    Query(Vec<(Scalar, Scalar)>),
}

fn pair() -> impl Strategy<Value = (Scalar, Scalar)> {
    (0.0f32..=1.0, 0.0f32..=1.0).prop_map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
}

fn op(dims: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u32..48, prop::collection::vec(pair(), dims)).prop_map(|(id, ps)| Op::Insert(id, ps)),
        2 => (0u32..48).prop_map(Op::Remove),
        2 => (0u32..48, prop::collection::vec(pair(), dims)).prop_map(|(id, ps)| Op::Update(id, ps)),
        3 => prop::collection::vec(pair(), dims).prop_map(Op::Query),
    ]
}

fn rect_of(pairs: &[(Scalar, Scalar)]) -> HyperRect {
    let lo: Vec<Scalar> = pairs.iter().map(|p| p.0).collect();
    let hi: Vec<Scalar> = pairs.iter().map(|p| p.1).collect();
    HyperRect::from_bounds(&lo, &hi).unwrap()
}

/// Runs an op stream against `index`, ignoring rejected mutations
/// (duplicate inserts, unknown removes — the stream is arbitrary).
fn run_ops(index: &mut AdaptiveClusterIndex, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Insert(id, ps) => {
                let _ = index.insert(ObjectId(*id), rect_of(ps));
            }
            Op::Remove(id) => {
                let _ = index.remove(ObjectId(*id));
            }
            Op::Update(id, ps) => {
                let _ = index.update(ObjectId(*id), rect_of(ps));
            }
            Op::Query(ps) => {
                index.execute(&SpatialQuery::intersection(rect_of(ps)));
            }
        }
    }
}

/// The membership ground truth of a surviving WAL prefix: membership
/// records applied to a flat map, by WAL semantics alone — no index
/// machinery involved, so comparing the recovered index against it is
/// non-circular.
fn membership_model(
    base: &HashMap<u32, HyperRect>,
    records: &[WalRecord],
) -> HashMap<u32, HyperRect> {
    let mut model = base.clone();
    for record in records {
        match record {
            WalRecord::Insert { id, coords } | WalRecord::Update { id, coords } => {
                model.insert(*id, HyperRect::from_flat(coords).unwrap());
            }
            WalRecord::Remove { id } => {
                model.remove(id);
            }
            WalRecord::Merge { .. } | WalRecord::Materialize { .. } | WalRecord::EpochClose => {}
        }
    }
    model
}

/// Decodes the surviving record prefix of a byte image.
fn surviving_records(bytes: &[u8]) -> Vec<WalRecord> {
    let mut mem = MemBacking::from_bytes(bytes.to_vec());
    Wal::replay(&mut mem).unwrap().records
}

fn assert_matches_model(
    index: &AdaptiveClusterIndex,
    model: &HashMap<u32, HyperRect>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(index.len(), model.len());
    for (&id, rect) in model {
        prop_assert_eq!(index.get(ObjectId(id)).as_ref(), Some(rect));
    }
    // Probe queries must answer exactly per the model.
    for probe in [
        SpatialQuery::point_enclosing(vec![0.5, 0.5]),
        SpatialQuery::intersection(HyperRect::from_bounds(&[0.0, 0.0], &[0.3, 0.9]).unwrap()),
        SpatialQuery::containment(HyperRect::from_bounds(&[0.2, 0.1], &[0.9, 0.8]).unwrap()),
    ] {
        let mut got: Vec<u32> = index
            .query(&probe)
            .matches
            .iter()
            .map(|o| o.raw())
            .collect();
        got.sort_unstable();
        let mut want: Vec<u32> = model
            .iter()
            .filter(|(_, r)| probe.matches_rect(r))
            .map(|(&id, _)| id)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole property: run a random op stream with a WAL
    /// attached, then crash at an arbitrary byte offset. Recovery from
    /// the prefix must (1) succeed with valid invariants, (2) agree
    /// exactly with the membership model of the surviving records, and
    /// (3) be deterministic — a second recovery from the same bytes
    /// yields bit-identical cluster snapshots.
    #[test]
    fn recovery_from_any_crash_point_matches_surviving_prefix(
        ops in prop::collection::vec(op(2), 1..120),
        cut in 0.0f64..=1.0,
    ) {
        let mut index = AdaptiveClusterIndex::new(config_2d()).unwrap();
        index.attach_wal(mem_wal(2, FlushPolicy::PerRecord)).unwrap();
        run_ops(&mut index, &ops);
        prop_assert!(index.wal_failure().is_none());
        let bytes = wal_bytes(&mut index);

        let k = (cut * bytes.len() as f64) as usize;
        let prefix = &bytes[..k.min(bytes.len())];
        let records = surviving_records(prefix);
        let model = membership_model(&HashMap::new(), &records);

        let (recovered, report) = AdaptiveClusterIndex::recover(
            None,
            Box::new(MemBacking::from_bytes(prefix.to_vec())),
            FlushPolicy::PerRecord,
            config_2d(),
        ).unwrap();
        prop_assert_eq!(report.replayed_records, records.len() as u64);
        recovered.check_invariants().map_err(TestCaseError::fail)?;
        assert_matches_model(&recovered, &model)?;

        let (again, _) = AdaptiveClusterIndex::recover(
            None,
            Box::new(MemBacking::from_bytes(prefix.to_vec())),
            FlushPolicy::PerRecord,
            config_2d(),
        ).unwrap();
        prop_assert_eq!(again.snapshots(), recovered.snapshots());
        prop_assert_eq!(again.reorganizations(), recovered.reorganizations());
        prop_assert_eq!(again.total_merges(), recovered.total_merges());
        prop_assert_eq!(again.total_splits(), recovered.total_splits());
    }

    /// Same property across a checkpoint: ops, checkpoint (which
    /// truncates the log), more ops, crash at an arbitrary offset of
    /// the suffix. Recovery = checkpoint + surviving suffix.
    #[test]
    fn recovery_replays_wal_suffix_onto_checkpoint(
        before in prop::collection::vec(op(2), 1..60),
        after in prop::collection::vec(op(2), 1..60),
        cut in 0.0f64..=1.0,
    ) {
        let path = temp_path("ckpt");
        let mut index = AdaptiveClusterIndex::new(config_2d()).unwrap();
        index.attach_wal(mem_wal(2, FlushPolicy::PerRecord)).unwrap();
        run_ops(&mut index, &before);
        index.checkpoint(&path).unwrap();
        let base: HashMap<u32, HyperRect> = index
            .object_ids()
            .map(|id| (id.raw(), index.get(id).unwrap()))
            .collect();
        run_ops(&mut index, &after);
        prop_assert!(index.wal_failure().is_none());
        let bytes = wal_bytes(&mut index);

        let k = (cut * bytes.len() as f64) as usize;
        let prefix = &bytes[..k.min(bytes.len())];
        let records = surviving_records(prefix);
        let model = membership_model(&base, &records);

        let result = AdaptiveClusterIndex::recover(
            Some(&path),
            Box::new(MemBacking::from_bytes(prefix.to_vec())),
            FlushPolicy::PerRecord,
            config_2d(),
        );
        std::fs::remove_file(&path).unwrap();
        let (recovered, report) = result.unwrap();
        prop_assert_eq!(report.replayed_records, records.len() as u64);
        recovered.check_invariants().map_err(TestCaseError::fail)?;
        assert_matches_model(&recovered, &model)?;
    }

    /// Bit-identical checkpoints across every `stats_layout` ×
    /// `reorg_mode` combination: a save/load round-trip preserves the
    /// `ClusterSnapshot`s exactly (statistics included), and original
    /// and reloaded index make identical decisions on the next pass.
    #[test]
    fn checkpoint_roundtrip_is_bit_identical_across_toggles(
        ops in prop::collection::vec(op(2), 20..100),
        layout_arena in (0u8..2).prop_map(|b| b != 0),
        incremental in (0u8..2).prop_map(|b| b != 0),
    ) {
        let mut config = config_2d();
        config.stats_layout = if layout_arena { StatsLayout::Arena } else { StatsLayout::PerClusterOracle };
        config.reorg_mode = if incremental { ReorgMode::Incremental } else { ReorgMode::FullOracle };
        let mut index = AdaptiveClusterIndex::new(config.clone()).unwrap();
        run_ops(&mut index, &ops);

        let path = temp_path("matrix");
        index.save(&path).unwrap();
        let result = AdaptiveClusterIndex::load(&path, config);
        std::fs::remove_file(&path).unwrap();
        let mut reloaded = result.unwrap();
        reloaded.check_invariants().map_err(TestCaseError::fail)?;

        prop_assert_eq!(reloaded.snapshots(), index.snapshots());
        prop_assert_eq!(reloaded.total_queries(), index.total_queries());
        prop_assert_eq!(reloaded.reorganizations(), index.reorganizations());
        prop_assert_eq!(reloaded.verify_fraction(), index.verify_fraction());

        // Decision equivalence: the same subsequent traffic must
        // produce the same answers and the same next pass.
        for probe in [
            SpatialQuery::point_enclosing(vec![0.4, 0.6]),
            SpatialQuery::intersection(HyperRect::from_bounds(&[0.1, 0.2], &[0.5, 0.9]).unwrap()),
        ] {
            prop_assert_eq!(index.execute(&probe).matches, reloaded.execute(&probe).matches);
        }
        prop_assert_eq!(index.reorganize(), reloaded.reorganize());
        prop_assert_eq!(reloaded.snapshots(), index.snapshots());
    }
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

/// Inserts `n` deterministic rectangles, stopping at the first error.
fn insert_until_failure(index: &mut AdaptiveClusterIndex, n: u32) -> (u32, Option<IndexError>) {
    for i in 0..n {
        let t = f64::from(i % 97) / 97.0;
        let lo = [t as Scalar * 0.8, (1.0 - t as Scalar) * 0.7];
        let hi = [lo[0] + 0.1, lo[1] + 0.1];
        let rect = HyperRect::from_bounds(&lo, &hi).unwrap();
        if let Err(e) = index.insert(ObjectId(i), rect) {
            return (i, Some(e));
        }
    }
    (n, None)
}

#[test]
fn crash_fault_preserves_logged_prefix_and_recovers() {
    // Pristine run for the reference byte image.
    let mut pristine = AdaptiveClusterIndex::new(config_2d()).unwrap();
    pristine
        .attach_wal(mem_wal(2, FlushPolicy::PerRecord))
        .unwrap();
    let (_, err) = insert_until_failure(&mut pristine, 40);
    assert!(err.is_none());
    let reference = wal_bytes(&mut pristine);

    // Same stream over a medium that crashes at the 25th append (the
    // header is append #1, so record appends start at #2).
    let injector = FaultInjector::new(FaultPlan::crash_after_appends(25));
    let wal = Wal::create(Box::new(injector), FlushPolicy::PerRecord, 2).unwrap();
    let mut index = AdaptiveClusterIndex::new(config_2d()).unwrap();
    index.attach_wal(wal).unwrap();
    let (applied, err) = insert_until_failure(&mut index, 40);
    let err = err.expect("the crash must surface as an insert error");
    assert!(matches!(err, IndexError::Wal(_)), "got {err:?}");
    // The failed insert was not applied: log-then-apply means a crash
    // loses the record, never applies an unlogged mutation.
    assert_eq!(index.len(), applied as usize);
    index.check_invariants().unwrap();

    let store = index.detach_wal().unwrap().into_store();
    let survived = store
        .as_any()
        .downcast_ref::<FaultInjector>()
        .unwrap()
        .surviving()
        .to_vec();
    // Determinism across media: what survived is a byte prefix of the
    // pristine image.
    assert!(survived.len() <= reference.len());
    assert_eq!(&reference[..survived.len()], &survived[..]);

    let (recovered, report) = AdaptiveClusterIndex::recover(
        None,
        Box::new(MemBacking::from_bytes(survived)),
        FlushPolicy::PerRecord,
        config_2d(),
    )
    .unwrap();
    assert_eq!(report.replayed_records, applied as u64);
    assert_eq!(recovered.len(), applied as usize);
    recovered.check_invariants().unwrap();
}

#[test]
fn torn_write_is_truncated_at_first_bad_checksum() {
    let injector = FaultInjector::new(FaultPlan::torn_write_at(10, 5));
    let wal = Wal::create(Box::new(injector), FlushPolicy::PerRecord, 2).unwrap();
    let mut index = AdaptiveClusterIndex::new(config_2d()).unwrap();
    index.attach_wal(wal).unwrap();
    let (applied, err) = insert_until_failure(&mut index, 40);
    assert!(err.is_some());
    let store = index.detach_wal().unwrap().into_store();
    let survived = store
        .as_any()
        .downcast_ref::<FaultInjector>()
        .unwrap()
        .surviving()
        .to_vec();

    let (recovered, report) = AdaptiveClusterIndex::recover(
        None,
        Box::new(MemBacking::from_bytes(survived)),
        FlushPolicy::PerRecord,
        config_2d(),
    )
    .unwrap();
    let torn = report
        .torn_tail
        .expect("the torn half-record must be detected");
    assert!(torn.dropped_bytes > 0);
    // Records before the tear replay; the torn one is gone.
    assert_eq!(report.replayed_records, applied as u64);
    assert_eq!(recovered.len(), applied as usize);
    recovered.check_invariants().unwrap();
}

#[test]
fn enospc_fails_the_mutation_and_poisons_the_log() {
    let injector = FaultInjector::new(FaultPlan::enospc_at(5));
    let wal = Wal::create(Box::new(injector), FlushPolicy::PerRecord, 2).unwrap();
    let mut index = AdaptiveClusterIndex::new(config_2d()).unwrap();
    index.attach_wal(wal).unwrap();
    let (applied, err) = insert_until_failure(&mut index, 40);
    match err.expect("ENOSPC must surface") {
        IndexError::Wal(w) => {
            assert_eq!(w.io_kind(), Some(std::io::ErrorKind::StorageFull));
        }
        other => panic!("expected a wal error, got {other:?}"),
    }
    assert_eq!(index.len(), applied as usize);
    index.check_invariants().unwrap();
    // The log is poisoned: later mutations must keep failing instead of
    // silently writing past a gap.
    let rect = HyperRect::from_bounds(&[0.1, 0.1], &[0.2, 0.2]).unwrap();
    let again = index.insert(ObjectId(9999), rect).unwrap_err();
    assert!(matches!(again, IndexError::Wal(_)), "got {again:?}");
    assert_eq!(index.len(), applied as usize);
}

#[test]
fn flush_failure_surfaces_under_per_record_policy() {
    let injector = FaultInjector::new(FaultPlan::flush_fail_at(3));
    let wal = Wal::create(Box::new(injector), FlushPolicy::PerRecord, 2).unwrap();
    let mut index = AdaptiveClusterIndex::new(config_2d()).unwrap();
    index.attach_wal(wal).unwrap();
    let (applied, err) = insert_until_failure(&mut index, 40);
    assert!(matches!(err, Some(IndexError::Wal(_))), "got {err:?}");
    assert_eq!(index.len(), applied as usize);
    index.check_invariants().unwrap();
}

#[test]
fn short_reads_do_not_produce_a_broken_index() {
    // Write a healthy log, then recover through a medium that drops
    // tail bytes from every read: recovery sees a shorter prefix but
    // must still come back valid.
    let mut index = AdaptiveClusterIndex::new(config_2d()).unwrap();
    index
        .attach_wal(mem_wal(2, FlushPolicy::PerRecord))
        .unwrap();
    let (applied, err) = insert_until_failure(&mut index, 30);
    assert!(err.is_none());
    let bytes = wal_bytes(&mut index);

    let mut injector = FaultInjector::new(FaultPlan::none().with_short_read(7));
    injector.append(&bytes).unwrap();
    injector.flush().unwrap();
    let (recovered, report) = AdaptiveClusterIndex::recover(
        None,
        Box::new(injector),
        FlushPolicy::PerRecord,
        config_2d(),
    )
    .unwrap();
    assert!(report.replayed_records < applied as u64);
    assert!(report.torn_tail.is_some());
    recovered.check_invariants().unwrap();
}

#[test]
fn wal_failure_inside_a_pass_degrades_gracefully() {
    use acx_workloads::{AdaptiveScenario, OscillatingHeat, UniformWorkload, WorkloadConfig};

    let dims = 3;
    let cfg = WorkloadConfig::new(dims, 600, 0x51AB);
    let objects = UniformWorkload::with_max_length(cfg.clone(), 0.4).generate_objects();
    let mut scenario = OscillatingHeat::new(&cfg, 120, 0.3, 0.08);
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 0;
    config.confidence_z = 0.0;

    // Crash the medium well after the membership stream, so the fault
    // lands on a structural record logged mid-pass.
    let injector = FaultInjector::new(FaultPlan::crash_after_appends(objects.len() as u64 + 3));
    let wal = Wal::create(Box::new(injector), FlushPolicy::PerRecord, dims).unwrap();
    let mut index = AdaptiveClusterIndex::new(config).unwrap();
    index.attach_wal(wal).unwrap();
    for (i, rect) in objects.iter().enumerate() {
        index.insert(ObjectId(i as u32), rect.clone()).unwrap();
    }
    let mut failed_passes = 0;
    for _ in 0..6 {
        for _ in 0..60 {
            let q = scenario.next_query();
            index.execute(&q);
        }
        index.reorganize();
        if index.wal_failure().is_some() {
            failed_passes += 1;
        }
    }
    // The pass swallowed the failure, surfaced it, and the index stayed
    // fully usable.
    assert!(failed_passes > 0, "the crash must land inside a pass");
    assert!(index.take_wal_failure().is_some());
    assert!(index.wal_failure().is_none());
    index.check_invariants().unwrap();
    assert!(
        index.total_splits() > 0,
        "the workload must force structure"
    );

    // What reached the medium before the crash still recovers.
    let store = index.detach_wal().unwrap().into_store();
    let survived = store
        .as_any()
        .downcast_ref::<FaultInjector>()
        .unwrap()
        .surviving()
        .to_vec();
    let (recovered, _) = AdaptiveClusterIndex::recover(
        None,
        Box::new(MemBacking::from_bytes(survived)),
        FlushPolicy::PerRecord,
        IndexConfig::memory(dims),
    )
    .unwrap();
    recovered.check_invariants().unwrap();
}

// ---------------------------------------------------------------------
// Checkpoint / WAL coupling
// ---------------------------------------------------------------------

#[test]
fn crash_between_checkpoint_save_and_wal_reset_does_not_double_apply() {
    // The crash window checkpoint() must survive: the checkpoint file
    // is durably on disk, but the crash hit before the WAL was
    // truncated, so the log still holds every record the checkpoint
    // already absorbed. Recovery must discard those records via the
    // checkpoint-id stamp instead of replaying duplicates.
    let path = temp_path("ckpt-window");
    let mut index = AdaptiveClusterIndex::new(config_2d()).unwrap();
    index
        .attach_wal(mem_wal(2, FlushPolicy::PerRecord))
        .unwrap();
    let (applied, err) = insert_until_failure(&mut index, 30);
    assert!(err.is_none());
    // The log image the instant before checkpoint() would truncate it:
    // stamped with checkpoint id 0, holding every mutation.
    let pre_checkpoint_log = wal_bytes(&mut index);
    let logged = {
        let mut probe = MemBacking::from_bytes(pre_checkpoint_log.clone());
        Wal::replay(&mut probe).unwrap().records.len() as u64
    };
    assert!(logged >= u64::from(applied));
    index
        .attach_wal(mem_wal(2, FlushPolicy::PerRecord))
        .unwrap();
    index.checkpoint(&path).unwrap(); // checkpoint id 1 on disk

    let result = AdaptiveClusterIndex::recover(
        Some(&path),
        Box::new(MemBacking::from_bytes(pre_checkpoint_log)),
        FlushPolicy::PerRecord,
        config_2d(),
    );
    std::fs::remove_file(&path).unwrap();
    let (recovered, report) = result.unwrap();
    assert_eq!(report.replayed_records, 0);
    assert_eq!(report.superseded_records, logged);
    assert_eq!(recovered.len(), applied as usize);
    recovered.check_invariants().unwrap();
    assert_eq!(recovered.snapshots(), index.snapshots());
    // The re-attached log was realigned: a later crash-recovery pairs
    // it with checkpoint generation 1, not 0.
    let mut recovered = recovered;
    let mut store = recovered.detach_wal().unwrap().into_store();
    let replay = Wal::replay(store.as_mut()).unwrap();
    assert_eq!(replay.checkpoint_id, Some(1));
    assert!(replay.records.is_empty());
}

#[test]
fn recovery_refuses_a_log_newer_than_its_checkpoint() {
    // A log already truncated by checkpoint 1, recovered without that
    // checkpoint: the records the log no longer holds would be silently
    // lost, so recovery must refuse instead of returning a hole.
    let path = temp_path("ckpt-future");
    let mut index = AdaptiveClusterIndex::new(config_2d()).unwrap();
    index
        .attach_wal(mem_wal(2, FlushPolicy::PerRecord))
        .unwrap();
    let (_, err) = insert_until_failure(&mut index, 10);
    assert!(err.is_none());
    index.checkpoint(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    let bytes = wal_bytes(&mut index); // stamped with checkpoint id 1
    let err = match AdaptiveClusterIndex::recover(
        None,
        Box::new(MemBacking::from_bytes(bytes)),
        FlushPolicy::PerRecord,
        config_2d(),
    ) {
        Ok(_) => panic!("recovery accepted a log newer than its checkpoint"),
        Err(e) => e,
    };
    assert!(matches!(err, IndexError::Recovery { .. }), "got {err:?}");
    assert!(err.to_string().contains("missing or stale"), "{err}");
}

#[test]
fn checkpoint_ids_are_monotone_across_recoveries() {
    let path = temp_path("ckpt-monotone");
    let mut index = AdaptiveClusterIndex::new(config_2d()).unwrap();
    index
        .attach_wal(mem_wal(2, FlushPolicy::PerRecord))
        .unwrap();
    let (_, err) = insert_until_failure(&mut index, 8);
    assert!(err.is_none());
    index.checkpoint(&path).unwrap();
    index.checkpoint(&path).unwrap(); // id 2
    let bytes = wal_bytes(&mut index);
    let (mut recovered, report) = AdaptiveClusterIndex::recover(
        Some(&path),
        Box::new(MemBacking::from_bytes(bytes)),
        FlushPolicy::PerRecord,
        config_2d(),
    )
    .unwrap();
    assert_eq!(report.superseded_records, 0);
    // The next checkpoint continues the sequence the crash interrupted.
    recovered.checkpoint(&path).unwrap();
    let mut store = recovered.detach_wal().unwrap().into_store();
    let replay = Wal::replay(store.as_mut()).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(replay.checkpoint_id, Some(3));
}

// ---------------------------------------------------------------------
// Plumbing edges
// ---------------------------------------------------------------------

#[test]
fn attach_wal_rejects_dimension_mismatch() {
    let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(2)).unwrap();
    let wal = mem_wal(3, FlushPolicy::PerRecord);
    assert!(matches!(
        index.attach_wal(wal),
        Err(IndexError::DimensionMismatch {
            expected: 2,
            actual: 3
        })
    ));
    assert!(!index.wal_attached());
}

#[test]
fn update_logs_one_record() {
    let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(2)).unwrap();
    index
        .attach_wal(mem_wal(2, FlushPolicy::PerRecord))
        .unwrap();
    let r1 = HyperRect::from_bounds(&[0.1, 0.1], &[0.2, 0.2]).unwrap();
    let r2 = HyperRect::from_bounds(&[0.6, 0.6], &[0.8, 0.8]).unwrap();
    index.insert(ObjectId(7), r1).unwrap();
    index.update(ObjectId(7), r2.clone()).unwrap();
    let bytes = wal_bytes(&mut index);
    let records = surviving_records(&bytes);
    assert_eq!(records.len(), 2, "insert + update, nothing double-logged");
    assert!(matches!(records[0], WalRecord::Insert { id: 7, .. }));
    assert!(matches!(records[1], WalRecord::Update { id: 7, .. }));

    let (recovered, _) = AdaptiveClusterIndex::recover(
        None,
        Box::new(MemBacking::from_bytes(bytes)),
        FlushPolicy::PerRecord,
        IndexConfig::memory(2),
    )
    .unwrap();
    assert_eq!(recovered.get(ObjectId(7)), Some(r2));
}

#[test]
fn per_epoch_policy_defers_flushes_to_the_close() {
    let wal = mem_wal(2, FlushPolicy::PerEpoch);
    let mut index = AdaptiveClusterIndex::new(config_2d()).unwrap();
    index.attach_wal(wal).unwrap();
    let (_, err) = insert_until_failure(&mut index, 20);
    assert!(err.is_none());
    index.reorganize(); // logs EpochClose, which flushes under PerEpoch
    let mut store = index.detach_wal().unwrap().into_store();
    let flushes = store
        .as_any()
        .downcast_ref::<MemBacking>()
        .unwrap()
        .flushes();
    assert!(
        (1..=2).contains(&flushes),
        "only the header sync and the epoch close should flush, got {flushes}"
    );
    // Everything is still recoverable.
    let bytes = store.read_durable().unwrap();
    let (recovered, report) = AdaptiveClusterIndex::recover(
        None,
        Box::new(MemBacking::from_bytes(bytes)),
        FlushPolicy::PerEpoch,
        config_2d(),
    )
    .unwrap();
    assert_eq!(recovered.len(), 20);
    assert_eq!(report.replayed_records, 21); // 20 inserts + EpochClose
    assert_eq!(recovered.reorganizations(), 1);
}
