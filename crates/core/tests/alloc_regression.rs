//! Regression test: once its scratch buffers are warm, the read-only
//! matching phase (`query_with` / `query_recorded_with` with a reused
//! [`StatsDelta`]) performs **zero heap allocations per query** — and
//! under [`StatsLayout::Arena`] a settled reorganization pass performs
//! **zero heap allocations** outright: every candidate column it scans
//! lives in the index-wide statistics slab, and the pass scratch is
//! index-owned.
//!
//! A counting global allocator wraps the system allocator; the tests
//! warm the relevant state over the full stream, then assert the
//! allocation counter does not move across a second pass.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use acx_core::{AdaptiveClusterIndex, IndexConfig, QueryScratch, StatsDelta, StatsLayout};
use acx_geom::{HyperRect, ObjectId, SpatialQuery};

/// The allocation counter is process-global, so tests measuring it must
/// not run concurrently — each one holds this lock across its body.
static SERIAL: Mutex<()> = Mutex::new(());

/// Counts every allocation (alloc, alloc_zeroed, realloc) delegated to
/// the system allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Deterministic pseudo-random scalar in `[0, 1]` on a coarse grid
/// (avoids pulling the `rand` dev-dependency into this binary: setup
/// allocations don't matter, but determinism of the measured loop does).
fn coord(state: &mut u64) -> f32 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    ((*state >> 33) % 33) as f32 / 32.0
}

#[test]
fn warmed_up_read_path_allocates_nothing_per_query() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dims = 6;
    let mut state = 0x5EED_u64;
    let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(dims)).unwrap();
    for i in 0..3000u32 {
        let (lo, hi): (Vec<f32>, Vec<f32>) = (0..dims)
            .map(|_| {
                let a = coord(&mut state);
                let b = coord(&mut state);
                (a.min(b), a.max(b))
            })
            .unzip();
        index
            .insert(ObjectId(i), HyperRect::from_bounds(&lo, &hi).unwrap())
            .unwrap();
    }
    let queries: Vec<SpatialQuery> = (0..64)
        .map(|k| {
            if k % 2 == 0 {
                SpatialQuery::point_enclosing((0..dims).map(|_| coord(&mut state)).collect())
            } else {
                let (lo, hi): (Vec<f32>, Vec<f32>) = (0..dims)
                    .map(|_| {
                        let a = coord(&mut state);
                        let b = coord(&mut state);
                        (a.min(b), a.max(b))
                    })
                    .unzip();
                SpatialQuery::intersection(HyperRect::from_bounds(&lo, &hi).unwrap())
            }
        })
        .collect();

    // Adapt the index so several clusters exist and exploration does
    // real tree traversal, then warm the scratch pair over every query.
    for q in &queries {
        index.execute(q);
        index.execute(q);
    }
    let mut scratch = QueryScratch::new();
    let mut delta = StatsDelta::new();
    let mut warm_matches = 0usize;
    for q in &queries {
        delta.clear();
        index.query_recorded_with(q, &mut delta, &mut scratch);
        warm_matches += scratch.matches().len();
        index.query_with(q, &mut scratch);
    }

    // Measured pass: the identical query set through the warm scratch.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut measured_matches = 0usize;
    for q in &queries {
        delta.clear();
        index.query_recorded_with(q, &mut delta, &mut scratch);
        measured_matches += scratch.matches().len();
        index.query_with(q, &mut scratch);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(measured_matches, warm_matches, "test premise: same work");
    assert!(warm_matches > 0, "test premise: queries must match objects");
    assert_eq!(
        after - before,
        0,
        "warmed-up explore allocated {} times across {} queries",
        after - before,
        2 * queries.len()
    );

    // The full recorded `execute` path — candidate matching included —
    // reuses the index-owned (scratch, delta) pair; once warm, the only
    // allocation left per query is cloning the returned match vector.
    // (The warm-up above already ran every query through `execute`.)
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut executed_matches = 0usize;
    for q in &queries {
        executed_matches += index.execute(q).matches.len();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(executed_matches, warm_matches, "test premise: same work");
    assert!(
        (after - before) as usize <= queries.len(),
        "warmed-up recorded execute allocated {} times across {} queries \
         (expected at most one match-vector clone each)",
        after - before,
        queries.len()
    );
}

/// Under the arena layout, a *settled* reorganization pass — the stream
/// has stopped forcing splits and merges, so the pass only screens,
/// scans candidate columns, and folds the epoch — allocates nothing:
/// the columns live in the statistics slab and every scratch buffer is
/// index-owned and warm.
#[test]
fn warmed_reorg_pass_allocates_nothing_under_arena() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dims = 5;
    let mut state = 0xA2E7A_u64;
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 0; // explicit passes below
    config.stats_layout = StatsLayout::Arena;
    let mut index = AdaptiveClusterIndex::new(config).unwrap();
    for i in 0..2000u32 {
        let (lo, hi): (Vec<f32>, Vec<f32>) = (0..dims)
            .map(|_| {
                let a = coord(&mut state);
                let b = coord(&mut state);
                (a.min(b), a.max(b))
            })
            .unzip();
        index
            .insert(ObjectId(i), HyperRect::from_bounds(&lo, &hi).unwrap())
            .unwrap();
    }
    // A fixed, skewed query set replayed every round: the clustering
    // converges on it, after which passes stop restructuring.
    let queries: Vec<SpatialQuery> = (0..48)
        .map(|_| {
            SpatialQuery::point_enclosing(
                (0..dims).map(|_| coord(&mut state) * 0.4).collect(),
            )
        })
        .collect();
    let mut settled_rounds = 0;
    for _ in 0..30 {
        for q in &queries {
            index.execute(q);
        }
        let report = index.reorganize();
        if report.splits == 0 && report.merges == 0 {
            settled_rounds += 1;
            if settled_rounds >= 2 {
                break;
            }
        } else {
            settled_rounds = 0;
        }
    }
    assert!(
        settled_rounds >= 2,
        "stream must settle for the measured pass to be structural-change-free"
    );

    // Measured pass: same query window, then one pass through warm
    // arena columns and warm pass scratch.
    for q in &queries {
        index.execute(q);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let report = index.reorganize();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!((report.splits, report.merges), (0, 0), "test premise: settled pass");
    let profile = index.last_reorg_profile();
    assert!(profile.evaluated > 0, "test premise: the pass must evaluate clusters");
    assert!(index.cluster_count() > 1, "test premise: clusters must have materialized");
    assert!(profile.arena_capacity_bytes > 0, "test premise: arena layout in use");
    assert_eq!(
        after - before,
        0,
        "settled arena reorganization pass allocated {} times",
        after - before
    );
}
