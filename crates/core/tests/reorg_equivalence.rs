//! The incremental reorganization pass must be **decision-identical**
//! to the full scalar sweep: same [`ReorgReport`] from every pass, same
//! merges and materializations, bit-identical [`ClusterSnapshot`]s —
//! across mutation/query interleavings, every query kind, and streams
//! that force both splits and merges. Two indexes differing only in
//! [`ReorgMode`] are driven through identical workloads and compared
//! pass by pass.
//!
//! The screen, the batched benefit columns, and the lazy candidate
//! decay are all exercised here: the incremental index skips scans and
//! leaves untouched counters un-decayed, yet every observable decision
//! must equal the oracle's.
//!
//! The [`StatsLayout`] toggle rides the same harness: the pairwise
//! tests cross **both** toggles at once (incremental over the
//! statistics arena vs the full sweep over per-cluster columns), while
//! the main drivers run a *triple* — incremental/arena,
//! incremental/per-cluster, full-oracle/per-cluster — asserted
//! pairwise, so a divergence is attributed to the pass strategy or the
//! statistics layout, not just detected.

use acx_core::{AdaptiveClusterIndex, IndexConfig, ReorgMode, StatsLayout};
use acx_geom::{HyperRect, ObjectId, SpatialQuery};
use acx_workloads::{
    AdaptiveScenario, ClusteredObjects, FlashCrowd, MigratingHotspot, MixedTraffic,
    OscillatingHeat, UniformWorkload, WorkloadConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The strategy triple the main drivers compare, with attribution
/// labels: index 1 isolates the statistics layout (same pass), index 2
/// isolates the pass strategy (same layout as 1).
const TRIPLE: [(&str, ReorgMode, StatsLayout); 3] = [
    ("incremental/arena", ReorgMode::Incremental, StatsLayout::Arena),
    (
        "incremental/per-cluster",
        ReorgMode::Incremental,
        StatsLayout::PerClusterOracle,
    ),
    (
        "full-oracle/per-cluster",
        ReorgMode::FullOracle,
        StatsLayout::PerClusterOracle,
    ),
];

fn mode_triple(config: &IndexConfig) -> [AdaptiveClusterIndex; 3] {
    TRIPLE.map(|(_, reorg_mode, stats_layout)| {
        AdaptiveClusterIndex::new(IndexConfig {
            reorg_mode,
            stats_layout,
            ..config.clone()
        })
        .unwrap()
    })
}

/// Crosses both toggles in one pair: the production configuration
/// (incremental pass, statistics arena) against the doubly-oracle
/// reference (full scalar sweep, per-cluster columns).
fn mode_pair(config: &IndexConfig) -> (AdaptiveClusterIndex, AdaptiveClusterIndex) {
    let incremental = AdaptiveClusterIndex::new(IndexConfig {
        reorg_mode: ReorgMode::Incremental,
        stats_layout: StatsLayout::Arena,
        ..config.clone()
    })
    .unwrap();
    let oracle = AdaptiveClusterIndex::new(IndexConfig {
        reorg_mode: ReorgMode::FullOracle,
        stats_layout: StatsLayout::PerClusterOracle,
        ..config.clone()
    })
    .unwrap();
    (incremental, oracle)
}

fn random_rect(rng: &mut StdRng, dims: usize, grid: u32) -> HyperRect {
    let mut lo = Vec::with_capacity(dims);
    let mut hi = Vec::with_capacity(dims);
    for _ in 0..dims {
        let a = rng.gen_range(0..=grid) as f32 / grid as f32;
        let b = rng.gen_range(0..=grid) as f32 / grid as f32;
        lo.push(a.min(b));
        hi.push(a.max(b));
    }
    HyperRect::from_bounds(&lo, &hi).unwrap()
}

fn random_query(rng: &mut StdRng, dims: usize, grid: u32) -> SpatialQuery {
    match rng.gen_range(0..4u32) {
        0 => SpatialQuery::intersection(random_rect(rng, dims, grid)),
        1 => SpatialQuery::containment(random_rect(rng, dims, grid)),
        2 => SpatialQuery::enclosure(random_rect(rng, dims, grid)),
        _ => SpatialQuery::point_enclosing(
            (0..dims)
                .map(|_| rng.gen_range(0..=grid) as f32 / grid as f32)
                .collect(),
        ),
    }
}

/// Asserts every observable piece of adaptive state agrees.
fn assert_state_identical(
    incremental: &AdaptiveClusterIndex,
    oracle: &AdaptiveClusterIndex,
    context: &str,
) {
    assert_eq!(
        incremental.reorganizations(),
        oracle.reorganizations(),
        "{context}: pass count"
    );
    assert_eq!(incremental.total_merges(), oracle.total_merges(), "{context}: merges");
    assert_eq!(incremental.total_splits(), oracle.total_splits(), "{context}: splits");
    assert_eq!(
        incremental.cluster_count(),
        oracle.cluster_count(),
        "{context}: cluster count"
    );
    assert_eq!(
        incremental.verify_fraction(),
        oracle.verify_fraction(),
        "{context}: verify fraction"
    );
    assert_eq!(incremental.snapshots(), oracle.snapshots(), "{context}: snapshots");
    assert_eq!(
        incremental.total_thrash(),
        oracle.total_thrash(),
        "{context}: thrash cycles"
    );
    incremental.check_invariants().unwrap();
    oracle.check_invariants().unwrap();
}

/// Asserts indexes 1 and 2 of the triple against index 0, labelling
/// each comparison so a failure names the strategy that diverged.
fn assert_triple_identical(triple: &[AdaptiveClusterIndex; 3], context: &str) {
    for i in 1..3 {
        assert_state_identical(
            &triple[0],
            &triple[i],
            &format!("{context} ({} vs {})", TRIPLE[0].0, TRIPLE[i].0),
        );
    }
}

/// Drives the strategy triple through one scenario-zoo query stream
/// (with its abrupt shift mid-way), comparing reports and full state
/// per pass — the drifting/adversarial/mixed analogue of
/// `drive_and_compare`.
fn drive_scenario_pair(
    mut scenario: Box<dyn AdaptiveScenario>,
    objects: Vec<HyperRect>,
    merge_cooldown: u64,
    periods: usize,
    queries_per_period: usize,
    shift_at: usize,
) -> (u64, u64, u64) {
    let mut config = IndexConfig::memory(scenario.dims());
    config.reorg_period = 0; // explicit passes below
    config.merge_cooldown = merge_cooldown;
    let mut triple = mode_triple(&config);
    for (i, rect) in objects.iter().enumerate() {
        for index in triple.iter_mut() {
            index.insert(ObjectId(i as u32), rect.clone()).unwrap();
        }
    }
    for period in 0..periods {
        if period == shift_at {
            scenario.shift();
        }
        for k in 0..queries_per_period {
            let q = scenario.next_query();
            let a = triple[0].execute(&q);
            for i in 1..3 {
                let b = triple[i].execute(&q);
                let label = TRIPLE[i].0;
                assert_eq!(a.matches, b.matches, "period {period} query {k} vs {label}");
                assert_eq!(
                    a.metrics.stats, b.metrics.stats,
                    "period {period} query {k} vs {label}"
                );
            }
        }
        let ra = triple[0].reorganize();
        for i in 1..3 {
            let rb = triple[i].reorganize();
            assert_eq!(
                ra, rb,
                "period {period}: ReorgReport diverged vs {}",
                TRIPLE[i].0
            );
        }
        assert_triple_identical(&triple, &format!("period {period}"));
    }
    (
        triple[0].total_splits(),
        triple[0].total_merges(),
        triple[0].total_thrash(),
    )
}

/// Drives the strategy triple through the same insert/query/mutate
/// stream with explicit reorganization passes, comparing the per-pass
/// reports and the full cluster state after every pass.
fn drive_and_compare(
    dims: usize,
    objects: usize,
    periods: usize,
    queries_per_period: usize,
    seed: u64,
) -> (u64, u64) {
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 0; // explicit passes below
    let mut triple = mode_triple(&config);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_id = 0u32;
    for _ in 0..objects {
        let rect = random_rect(&mut rng, dims, 8);
        for index in triple.iter_mut() {
            index.insert(ObjectId(next_id), rect.clone()).unwrap();
        }
        next_id += 1;
    }

    for period in 0..periods {
        for k in 0..queries_per_period {
            // Interleave membership mutations with queries so dirty
            // tracking sees inserts, removals and updates mid-epoch.
            match rng.gen_range(0..10u32) {
                0 => {
                    let rect = random_rect(&mut rng, dims, 8);
                    for index in triple.iter_mut() {
                        index.insert(ObjectId(next_id), rect.clone()).unwrap();
                    }
                    next_id += 1;
                }
                1 if next_id > 0 => {
                    let id = ObjectId(rng.gen_range(0..next_id));
                    let a = triple[0].contains(id);
                    for i in 1..3 {
                        assert_eq!(a, triple[i].contains(id), "vs {}", TRIPLE[i].0);
                    }
                    if a {
                        let ra = triple[0].remove(id).unwrap();
                        for index in triple.iter_mut().skip(1) {
                            let rb = index.remove(id).unwrap();
                            assert_eq!(ra, rb, "period {period} op {k}: removed rect");
                        }
                    }
                }
                2 if next_id > 0 => {
                    let id = ObjectId(rng.gen_range(0..next_id));
                    if triple[0].contains(id) {
                        let rect = random_rect(&mut rng, dims, 8);
                        for index in triple.iter_mut() {
                            index.update(id, rect.clone()).unwrap();
                        }
                    }
                }
                _ => {
                    let q = random_query(&mut rng, dims, 8);
                    let a = triple[0].execute(&q);
                    for i in 1..3 {
                        let b = triple[i].execute(&q);
                        let label = TRIPLE[i].0;
                        assert_eq!(a.matches, b.matches, "period {period} query {k} vs {label}");
                        assert_eq!(
                            a.metrics.stats, b.metrics.stats,
                            "period {period} query {k} vs {label}"
                        );
                    }
                }
            }
        }
        let ra = triple[0].reorganize();
        for i in 1..3 {
            let rb = triple[i].reorganize();
            assert_eq!(
                ra, rb,
                "period {period}: ReorgReport diverged vs {}",
                TRIPLE[i].0
            );
        }
        assert_triple_identical(&triple, &format!("period {period}"));
    }
    (triple[0].total_splits(), triple[0].total_merges())
}

#[test]
fn incremental_equals_full_low_dims() {
    let (splits, _) = drive_and_compare(2, 900, 8, 60, 0x1E01);
    assert!(splits > 0, "stream must force materializations to be meaningful");
}

#[test]
fn incremental_equals_full_mid_dims() {
    let (splits, _) = drive_and_compare(5, 700, 7, 50, 0x1E05);
    assert!(splits > 0, "stream must force materializations to be meaningful");
}

#[test]
fn incremental_equals_full_high_dims() {
    drive_and_compare(8, 600, 6, 45, 0x1E08);
}

/// A deterministic stream engineered to force splits *and* merges: a
/// hotspot workload materializes clusters around one corner of the
/// domain, then the hotspot moves away and the abandoned clusters merge
/// back — the full split/merge lifecycle under both modes.
#[test]
fn forced_splits_then_merges_are_identical() {
    let dims = 3;
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 0;
    config.confidence_z = 0.0; // act on any positive benefit: maximal churn
    let (mut incremental, mut oracle) = mode_pair(&config);

    let mut rng = StdRng::seed_from_u64(0xF0CED);
    for i in 0..1200u32 {
        let rect = random_rect(&mut rng, dims, 10);
        incremental.insert(ObjectId(i), rect.clone()).unwrap();
        oracle.insert(ObjectId(i), rect).unwrap();
    }

    let hotspot_phase = |lo: f32| {
        let mut qs = Vec::new();
        let mut prng = StdRng::seed_from_u64(lo.to_bits() as u64);
        for _ in 0..80 {
            let p: Vec<f32> = (0..dims)
                .map(|_| lo + prng.gen_range(0..=10) as f32 / 50.0)
                .collect();
            qs.push(SpatialQuery::point_enclosing(p));
        }
        qs
    };

    let mut total_merges = 0u64;
    let mut total_splits = 0u64;
    for (phase, lo) in [0.0f32, 0.0, 0.0, 0.8, 0.8, 0.8, 0.8].into_iter().enumerate() {
        for q in hotspot_phase(lo) {
            let a = incremental.execute(&q);
            let b = oracle.execute(&q);
            assert_eq!(a.matches, b.matches);
        }
        let ra = incremental.reorganize();
        let rb = oracle.reorganize();
        assert_eq!(ra, rb, "phase {phase}: ReorgReport diverged");
        total_merges += ra.merges;
        total_splits += ra.splits;
        assert_state_identical(&incremental, &oracle, &format!("phase {phase}"));
    }
    assert!(total_splits > 0, "hotspot phases must materialize clusters");
    assert!(total_merges > 0, "the moved hotspot must merge old clusters back");
}

/// The screen must actually skip work while staying decision-identical:
/// on a skewed stream, the incremental pass screens out a majority of
/// its evaluated clusters (otherwise it silently degenerated into the
/// full sweep and the equivalence above proves nothing about skipping).
#[test]
fn screen_skips_scans_without_changing_decisions() {
    let dims = 6;
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 0;
    let (mut incremental, mut oracle) = mode_pair(&config);
    let mut rng = StdRng::seed_from_u64(0x5C1);
    for i in 0..2000u32 {
        let rect = random_rect(&mut rng, dims, 12);
        incremental.insert(ObjectId(i), rect.clone()).unwrap();
        oracle.insert(ObjectId(i), rect).unwrap();
    }
    let mut screened = 0u64;
    let mut evaluated = 0u64;
    for _ in 0..10 {
        for _ in 0..100 {
            let p: Vec<f32> = (0..dims).map(|_| rng.gen_range(0..=5) as f32 / 25.0).collect();
            let q = SpatialQuery::point_enclosing(p);
            assert_eq!(incremental.execute(&q).matches, oracle.execute(&q).matches);
        }
        assert_eq!(incremental.reorganize(), oracle.reorganize());
        let profile = incremental.last_reorg_profile();
        screened += profile.screened_out;
        evaluated += profile.evaluated;
        // The oracle screens nothing: every evaluated cluster that does
        // not merge gets a full candidate scan.
        let oracle_profile = oracle.last_reorg_profile();
        assert_eq!(oracle_profile.screened_out, 0);
        assert!(oracle_profile.candidate_scans >= profile.candidate_scans);
    }
    assert_state_identical(&incremental, &oracle, "after skewed stream");
    assert!(
        evaluated > 0 && screened * 2 > evaluated,
        "screen skipped {screened}/{evaluated} scans — expected a majority on a skewed stream"
    );
}

/// A cluster whose signature *rejects* every query of the current
/// workload — both its start and end variation intervals specialized to
/// a region the queries left — goes completely untouched: its cached
/// no-split verdict from the last scan must then carry passes without a
/// scan (the dirty-set-gated verdict cache), while decisions stay
/// identical to the full sweep.
#[test]
fn cached_verdicts_carry_fully_abandoned_clusters() {
    let dims = 2;
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 0;
    config.confidence_z = 0.0;
    let (mut incremental, mut oracle) = mode_pair(&config);
    let mut rng = StdRng::seed_from_u64(0xABD0);
    // A large population of *identical* tight objects inside the low
    // corner: the materialized cluster specializes start *and* end low
    // (rejecting high-corner points), is far too big to merge back, and
    // — because every member sits in the same candidate cell at every
    // refinement level — its split cascade settles as soon as the
    // candidate is matched as often as the cluster itself, leaving one
    // big stable cluster that is scanned while warm.
    for i in 0..2000u32 {
        let rect = HyperRect::from_bounds(&[0.01; 2], &[0.03; 2]).unwrap();
        incremental.insert(ObjectId(i), rect.clone()).unwrap();
        oracle.insert(ObjectId(i), rect).unwrap();
    }
    for i in 2000..2300u32 {
        let rect = random_rect(&mut rng, dims, 8);
        incremental.insert(ObjectId(i), rect.clone()).unwrap();
        oracle.insert(ObjectId(i), rect).unwrap();
    }
    let run_phase = |incremental: &mut AdaptiveClusterIndex,
                         oracle: &mut AdaptiveClusterIndex,
                         rng: &mut StdRng,
                         lo: f32,
                         passes: usize|
     -> u64 {
        let mut cached_verdicts = 0u64;
        for _ in 0..passes {
            for _ in 0..60 {
                let p: Vec<f32> =
                    (0..dims).map(|_| lo + rng.gen_range(0..=9) as f32 / 50.0).collect();
                let q = SpatialQuery::point_enclosing(p);
                assert_eq!(incremental.execute(&q).matches, oracle.execute(&q).matches);
            }
            assert_eq!(incremental.reorganize(), oracle.reorganize());
            cached_verdicts += incremental.last_reorg_profile().cached_verdicts;
            assert_state_identical(incremental, oracle, "phase pass");
        }
        cached_verdicts
    };
    // Phase A: high-corner points — the untouched low-corner candidate
    // is cold and huge, so it materializes as one big specialized
    // cluster.
    run_phase(&mut incremental, &mut oracle, &mut rng, 0.8, 2);
    assert!(incremental.total_splits() > 0, "phase A must materialize the cold corner");
    // Phase B: low-corner points heat that cluster up — it fails the
    // screen, is scanned every pass, and (once its refinement cascade
    // settles) stores its no-split verdict.
    run_phase(&mut incremental, &mut oracle, &mut rng, 0.0, 6);
    // Phase C: back to high-corner points. The low cluster's signature
    // rejects them all, it is far too big to merge, and its cached
    // verdict must now carry passes without a scan.
    let cached_verdicts = run_phase(&mut incremental, &mut oracle, &mut rng, 0.8, 4);
    assert!(
        cached_verdicts > 0,
        "abandoned clusters must resolve through their cached verdicts"
    );
}

/// Auto-triggered passes (reorg_period > 0) through `execute` and
/// `execute_batch` also stay identical — the dirty set survives batch
/// windows and delta merging.
#[test]
fn auto_triggered_passes_and_batches_are_identical() {
    let dims = 4;
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 40;
    let (mut incremental, mut oracle) = mode_pair(&config);
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    for i in 0..800u32 {
        let rect = random_rect(&mut rng, dims, 8);
        incremental.insert(ObjectId(i), rect.clone()).unwrap();
        oracle.insert(ObjectId(i), rect).unwrap();
    }
    let queries: Vec<SpatialQuery> =
        (0..310).map(|_| random_query(&mut rng, dims, 8)).collect();
    // The incremental index runs the batched path (several reorg
    // windows), the oracle runs sequentially: state must still agree.
    let batched = incremental.execute_batch(&queries, 2);
    for (k, q) in queries.iter().enumerate() {
        let r = oracle.execute(q);
        assert_eq!(batched[k].matches, r.matches, "query {k}");
        assert_eq!(batched[k].metrics.stats, r.metrics.stats, "query {k}");
    }
    assert!(oracle.reorganizations() > 0, "stream must cross reorg boundaries");
    assert_state_identical(&incremental, &oracle, "after batched stream");
}

/// Drifting hotspot: the query focus migrates every period, so new
/// regions keep materializing while abandoned ones merge back — the
/// dirty set and the screens churn continuously under both modes.
#[test]
fn scenario_equivalence_migrating_hotspot() {
    let cfg = WorkloadConfig::new(5, 900, 0xD21F7);
    let objects = UniformWorkload::with_max_length(cfg.clone(), 0.4).generate_objects();
    let scenario = Box::new(MigratingHotspot::new(&cfg, 8e-3, 0.35, 0.08));
    let (splits, ..) = drive_scenario_pair(scenario, objects, 0, 8, 80, 4);
    assert!(splits > 0, "a hotspot stream must force materializations");
}

/// Flash crowd: a calm uniform stream punctuated by a concentrated
/// spike — the abrupt density change exercises the epoch gate and the
/// cached verdicts of suddenly-hot clusters.
#[test]
fn scenario_equivalence_flash_crowd() {
    let cfg = WorkloadConfig::new(4, 1000, 0xF1A58);
    let objects = UniformWorkload::with_max_length(cfg.clone(), 0.4).generate_objects();
    let scenario = Box::new(FlashCrowd::new(&cfg, 150, 90, 0.25, 0.06));
    drive_scenario_pair(scenario, objects, 0, 8, 80, 4);
}

/// Mixed query kinds over a drifting hotspot — the stream class that
/// exposed the scan-cache fold-drift hole: mixed kinds move the
/// effective `C` (verify fraction) every pass, and a verdict cached in
/// an epoch with fresh traffic went stale at the very next fold
/// (`q_eff ← γ·q_eff + q_count` shifts the candidate/cluster
/// probability ratios). The clustered object population adds
/// correlated density for the shift to abandon.
#[test]
fn scenario_equivalence_mixed_traffic_clustered() {
    let cfg = WorkloadConfig::new(5, 1100, 0x31BED);
    let objects = ClusteredObjects::new(cfg.clone(), 6, 0.08, 0.15).generate_objects();
    let scenario = Box::new(MixedTraffic::new(&cfg, 160, 0.35, 0.08));
    let (splits, ..) = drive_scenario_pair(scenario, objects, 0, 10, 80, 5);
    assert!(splits > 0, "mixed traffic must force materializations");
}

/// The oscillating adversary with the merge cool-down **enabled**: the
/// hysteresis veto must fire identically in the scalar and columnar
/// scans, so decision-identity holds for every cool-down value — and
/// both modes count the same thrash cycles.
#[test]
fn scenario_equivalence_oscillating_adversary_with_cooldown() {
    let cfg = WorkloadConfig::new(3, 900, 0x05C11);
    let objects = UniformWorkload::with_max_length(cfg.clone(), 0.4).generate_objects();
    for cooldown in [0u64, 3] {
        let scenario = Box::new(OscillatingHeat::new(&cfg, 120, 0.3, 0.08));
        drive_scenario_pair(scenario, objects.clone(), cooldown, 10, 60, 5);
    }
}

/// Bench-scale regression for the scan-cache fold-drift bug (fixed in
/// `store_scan_cache`): before the fix, this exact stream diverged by
/// one split at pass 49 — the cached verdict of a cluster that was hot
/// when scanned under-priced a candidate after the epoch fold. Runs in
/// seconds under `--release`, minutes in debug; kept `#[ignore]`d for
/// on-demand full-scale verification:
/// `cargo test --release -p acx_core --test reorg_equivalence -- --ignored`
#[test]
#[ignore = "bench-scale; run explicitly with --release"]
fn scenario_equivalence_mixed_traffic_bench_scale() {
    let dims = 8;
    let obj_cfg = WorkloadConfig::new(dims, 20_000, 0x5EED);
    let qry_cfg = WorkloadConfig::new(dims, 20_000, 0x5EED ^ 0xF1E1D);
    let objects = UniformWorkload::with_max_length(obj_cfg, 0.4).generate_objects();
    let scenario = Box::new(MixedTraffic::new(&qry_cfg, 800, 0.35, 0.08));
    drive_scenario_pair(scenario, objects, 0, 60, 100, 30);
}

proptest! {
    /// Random workloads in 1–8 dimensions, all query kinds, random
    /// mutation interleavings and period lengths: the incremental pass
    /// and the full sweep report identical `ReorgReport`s and leave
    /// bit-identical clustering state, pass after pass.
    #[test]
    fn prop_incremental_equals_full(
        dims in 1usize..=8,
        n_objects in 1usize..160,
        periods in 1usize..6,
        queries_per_period in 1usize..35,
        seed in 0u64..1_000_000,
    ) {
        let mut config = IndexConfig::memory(dims);
        config.reorg_period = 0;
        let (mut incremental, mut oracle) = mode_pair(&config);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut next_id = 0u32;
        for _ in 0..n_objects {
            let rect = random_rect(&mut rng, dims, 6);
            incremental.insert(ObjectId(next_id), rect.clone()).unwrap();
            oracle.insert(ObjectId(next_id), rect).unwrap();
            next_id += 1;
        }
        for _ in 0..periods {
            for _ in 0..queries_per_period {
                match rng.gen_range(0..8u32) {
                    0 => {
                        let rect = random_rect(&mut rng, dims, 6);
                        incremental.insert(ObjectId(next_id), rect.clone()).unwrap();
                        oracle.insert(ObjectId(next_id), rect).unwrap();
                        next_id += 1;
                    }
                    1 if next_id > 0 => {
                        let id = ObjectId(rng.gen_range(0..next_id));
                        if incremental.contains(id) {
                            incremental.remove(id).unwrap();
                            oracle.remove(id).unwrap();
                        }
                    }
                    _ => {
                        let q = random_query(&mut rng, dims, 6);
                        let a = incremental.execute(&q);
                        let b = oracle.execute(&q);
                        prop_assert_eq!(a.matches, b.matches);
                        prop_assert_eq!(a.metrics.stats, b.metrics.stats);
                    }
                }
            }
            let ra = incremental.reorganize();
            let rb = oracle.reorganize();
            prop_assert_eq!(ra, rb, "ReorgReport diverged");
            prop_assert_eq!(incremental.snapshots(), oracle.snapshots());
            prop_assert_eq!(incremental.total_merges(), oracle.total_merges());
            prop_assert_eq!(incremental.total_splits(), oracle.total_splits());
        }
        incremental.check_invariants().unwrap();
        oracle.check_invariants().unwrap();
    }
}
