//! Split→merge thrash under the oscillating adversary, and the
//! [`IndexConfig::merge_cooldown`] hysteresis that caps it.
//!
//! The adversary alternates the query focus between two disjoint
//! regions: without hysteresis the index materializes clusters for the
//! hot region, merges them back when the heat flips, and re-creates
//! the same signatures when it flips again — completed
//! split→merge→split cycles counted by
//! [`acx_core::ReorgProfile::thrash_cycles`]. With the cool-down at
//! least as long as the detection window, re-materializing a
//! just-merged signature is vetoed, so the cycle count must drop to
//! exactly zero while the veto counter shows the hysteresis working.

use acx_core::{AdaptiveClusterIndex, IndexConfig, ReorgMode};
use acx_geom::ObjectId;
use acx_workloads::{AdaptiveScenario, OscillatingHeat, UniformWorkload, WorkloadConfig};

/// Drives the oscillating adversary through `passes` explicit
/// reorganization passes and returns `(thrash, blocked, merges,
/// splits)` totals.
fn drive_adversary(merge_cooldown: u64) -> (u64, u64, u64, u64) {
    let dims = 3;
    let cfg = WorkloadConfig::new(dims, 1500, 0x7A5A);
    let objects = UniformWorkload::with_max_length(cfg.clone(), 0.4).generate_objects();
    // The heat flips every 3 passes of 60 queries: clusters built for
    // one phase are merged during the other, then rebuilt — the
    // split→merge→split loop the thrash counter detects.
    let mut scenario = OscillatingHeat::new(&cfg, 180, 0.3, 0.08);
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 0;
    config.confidence_z = 0.0; // act on any positive benefit: maximal churn
    config.merge_cooldown = merge_cooldown;
    config.reorg_mode = ReorgMode::Incremental;
    let mut index = AdaptiveClusterIndex::new(config).unwrap();
    for (i, rect) in objects.iter().enumerate() {
        index.insert(ObjectId(i as u32), rect.clone()).unwrap();
    }
    let mut blocked = 0;
    let mut profile_thrash = 0;
    for _ in 0..24 {
        for _ in 0..60 {
            let q = scenario.next_query();
            index.execute(&q);
        }
        index.reorganize();
        let profile = index.last_reorg_profile();
        blocked += profile.cooldown_blocked;
        profile_thrash += profile.thrash_cycles;
    }
    // The per-pass profile counters must sum to the lifetime total.
    assert_eq!(profile_thrash, index.total_thrash());
    index.check_invariants().unwrap();
    (
        index.total_thrash(),
        blocked,
        index.total_merges(),
        index.total_splits(),
    )
}

/// Baseline (no hysteresis): the adversary forces real thrash cycles —
/// this documents the failure mode the cool-down exists for.
#[test]
fn oscillating_adversary_thrashes_without_hysteresis() {
    let (thrash, blocked, merges, splits) = drive_adversary(0);
    assert!(merges > 0 && splits > 0, "adversary must force churn");
    assert!(
        thrash > 0,
        "oscillating heat must complete split→merge→split cycles (got {merges} merges, \
         {splits} splits, 0 counted cycles)"
    );
    assert_eq!(blocked, 0, "no veto can fire with the cool-down disabled");
}

/// With the cool-down at least as long as the detection window, a
/// signature merged within the window cannot re-materialize inside it,
/// so the cycle count is exactly zero — the hysteresis caps the cycle
/// budget at 0, not merely reduces it.
#[test]
fn merge_cooldown_eliminates_thrash_cycles() {
    let (baseline_thrash, ..) = drive_adversary(0);
    let (thrash, blocked, merges, splits) = drive_adversary(8);
    assert!(merges > 0 && splits > 0, "hysteresis must not freeze adaptation");
    assert_eq!(
        thrash, 0,
        "a cool-down covering the detection window leaves no countable cycle \
         (baseline had {baseline_thrash})"
    );
    assert!(
        blocked > 0,
        "the adversary must actually exercise the veto (baseline thrash \
         {baseline_thrash})"
    );
}
