//! Panic safety of the reorganization pass.
//!
//! A reorganization pass that dies mid-flight — here via the test-only
//! fault hook, standing in for an allocation failure or a bug in cost
//! arithmetic — must never leave the index structurally broken: every
//! invariant still holds, queries still answer exactly, and the next
//! pass runs to completion. With a WAL attached, the log's surviving
//! prefix must also still recover to a valid index, as it would after a
//! process death at the same point.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use acx_core::{AdaptiveClusterIndex, IndexConfig, ReorgFaultPoint, ReorgMode};
use acx_geom::{HyperRect, ObjectId, SpatialQuery};
use acx_storage::{FlushPolicy, MemBacking, Wal};
use acx_workloads::{AdaptiveScenario, OscillatingHeat, UniformWorkload, WorkloadConfig};

const DIMS: usize = 3;

/// Builds the adversarial setup from the thrash suite: oscillating heat
/// reliably forces both merges and splits, so every fault point fires.
fn adversary(seed: u64) -> (AdaptiveClusterIndex, Vec<HyperRect>, OscillatingHeat) {
    let cfg = WorkloadConfig::new(DIMS, 900, seed);
    let objects = UniformWorkload::with_max_length(cfg.clone(), 0.4).generate_objects();
    let scenario = OscillatingHeat::new(&cfg, 140, 0.3, 0.08);
    let mut config = IndexConfig::memory(DIMS);
    config.reorg_period = 0;
    config.confidence_z = 0.0;
    config.reorg_mode = ReorgMode::Incremental;
    let index = AdaptiveClusterIndex::new(config).unwrap();
    (index, objects, scenario)
}

fn naive_matches(objects: &[HyperRect], query: &SpatialQuery) -> Vec<u32> {
    let mut out: Vec<u32> = objects
        .iter()
        .enumerate()
        .filter(|(_, r)| query.matches_rect(r))
        .map(|(i, _)| i as u32)
        .collect();
    out.sort_unstable();
    out
}

fn assert_answers_exactly(
    index: &AdaptiveClusterIndex,
    objects: &[HyperRect],
    query: &SpatialQuery,
) {
    let mut got: Vec<u32> = index.query(query).matches.iter().map(|o| o.raw()).collect();
    got.sort_unstable();
    assert_eq!(got, naive_matches(objects, query), "answers after panic");
}

/// Drives query rounds + reorganizations with a hook that panics the
/// first time `point` fires; returns once the panic has happened.
/// Panics (failing the test) if the workload never reaches the point.
fn panic_at(
    index: &mut AdaptiveClusterIndex,
    scenario: &mut OscillatingHeat,
    point: ReorgFaultPoint,
) {
    let fired = Arc::new(AtomicUsize::new(0));
    let flag = Arc::clone(&fired);
    index.set_reorg_fault_hook(Some(Box::new(move |p| {
        if p == point && flag.fetch_add(usize::from(p == point), Ordering::SeqCst) == 0 {
            panic!("injected fault at {p:?}");
        }
    })));
    for round in 0..24 {
        for _ in 0..60 {
            let q = scenario.next_query();
            index.execute(&q);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            index.reorganize();
        }));
        if outcome.is_err() {
            assert!(fired.load(Ordering::SeqCst) > 0);
            index.set_reorg_fault_hook(None);
            return;
        }
        assert!(
            fired.load(Ordering::SeqCst) == 0,
            "hook fired without unwinding (round {round})"
        );
    }
    panic!("workload never reached fault point {point:?}");
}

fn check_after_panic(
    index: &mut AdaptiveClusterIndex,
    objects: &[HyperRect],
    scenario: &mut OscillatingHeat,
) {
    index.check_invariants().unwrap();
    assert_answers_exactly(index, objects, &scenario.next_query());
    assert_answers_exactly(
        index,
        objects,
        &SpatialQuery::point_enclosing(vec![0.5; DIMS]),
    );
    // The next pass must complete normally and leave a valid index.
    for _ in 0..40 {
        let q = scenario.next_query();
        index.execute(&q);
    }
    index.reorganize();
    index.check_invariants().unwrap();
    assert_answers_exactly(index, objects, &scenario.next_query());
}

fn run_panic_point(point: ReorgFaultPoint, seed: u64) {
    let (mut index, objects, mut scenario) = adversary(seed);
    for (i, rect) in objects.iter().enumerate() {
        index.insert(ObjectId(i as u32), rect.clone()).unwrap();
    }
    panic_at(&mut index, &mut scenario, point);
    check_after_panic(&mut index, &objects, &mut scenario);
}

#[test]
fn panic_before_merge_leaves_index_valid() {
    run_panic_point(ReorgFaultPoint::BeforeMerge, 0xA11C_E001);
}

#[test]
fn panic_after_merge_leaves_index_valid() {
    run_panic_point(ReorgFaultPoint::AfterMerge, 0xA11C_E002);
}

#[test]
fn panic_before_materialize_leaves_index_valid() {
    run_panic_point(ReorgFaultPoint::BeforeMaterialize, 0xA11C_E003);
}

#[test]
fn panic_after_materialize_leaves_index_valid() {
    run_panic_point(ReorgFaultPoint::AfterMaterialize, 0xA11C_E004);
}

#[test]
fn panic_before_epoch_close_leaves_index_valid() {
    run_panic_point(ReorgFaultPoint::BeforeEpochClose, 0xA11C_E005);
}

/// Process death mid-reorganization: the WAL prefix written up to the
/// panic point must recover to a valid index on its own — the replayed
/// structural records stop exactly where the pass died.
#[test]
fn wal_written_before_mid_reorg_panic_recovers() {
    let (mut index, objects, mut scenario) = adversary(0xA11C_E006);
    index
        .attach_wal(Wal::create(Box::new(MemBacking::new()), FlushPolicy::PerRecord, DIMS).unwrap())
        .unwrap();
    for (i, rect) in objects.iter().enumerate() {
        index.insert(ObjectId(i as u32), rect.clone()).unwrap();
    }
    panic_at(&mut index, &mut scenario, ReorgFaultPoint::AfterMaterialize);
    assert!(index.wal_failure().is_none(), "a panic is not a log fault");

    // Simulate the process dying at the panic: recover purely from what
    // the log holds at this instant.
    let mut store = index.detach_wal().unwrap().into_store();
    let bytes = store.read_durable().unwrap();
    let (recovered, report) = AdaptiveClusterIndex::recover(
        None,
        Box::new(MemBacking::from_bytes(bytes)),
        FlushPolicy::PerRecord,
        IndexConfig::memory(DIMS),
    )
    .unwrap();
    recovered.check_invariants().unwrap();
    assert_eq!(report.objects, objects.len());
    assert_eq!(recovered.len(), objects.len());
    assert!(
        recovered.total_splits() > 0,
        "the interrupted pass logged at least the materialization that panicked"
    );
    assert_answers_exactly(
        &recovered,
        &objects,
        &SpatialQuery::point_enclosing(vec![0.5; DIMS]),
    );
}
