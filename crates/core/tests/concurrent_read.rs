//! The concurrent read path: `query` takes `&self` (compile-checked by
//! issuing queries from scoped threads over a shared reference),
//! `execute_batch` is byte-identical to sequential `execute`, and
//! `get`/`remove` locate objects in O(1) through the store's position
//! map.

use std::time::Instant;

use acx_core::{AdaptiveClusterIndex, IndexConfig, IndexError, StatsDelta};
use acx_geom::{HyperRect, ObjectId, Scalar, SpatialQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_rect(rng: &mut StdRng, dims: usize) -> HyperRect {
    let mut lo = Vec::with_capacity(dims);
    let mut hi = Vec::with_capacity(dims);
    for _ in 0..dims {
        let a: Scalar = rng.gen_range(0.0..=1.0);
        let b: Scalar = rng.gen_range(0.0..=1.0);
        lo.push(a.min(b));
        hi.push(a.max(b));
    }
    HyperRect::from_bounds(&lo, &hi).unwrap()
}

fn mixed_queries(rng: &mut StdRng, dims: usize, n: usize) -> Vec<SpatialQuery> {
    (0..n)
        .map(|k| match k % 3 {
            0 => SpatialQuery::point_enclosing(
                (0..dims).map(|_| rng.gen_range(0.0..=1.0)).collect(),
            ),
            1 => {
                let mut lo = Vec::with_capacity(dims);
                let mut hi = Vec::with_capacity(dims);
                for _ in 0..dims {
                    let start: Scalar = rng.gen_range(0.0..=0.9);
                    lo.push(start);
                    hi.push(start + 0.1);
                }
                SpatialQuery::intersection(HyperRect::from_bounds(&lo, &hi).unwrap())
            }
            _ => SpatialQuery::containment(HyperRect::unit(dims)),
        })
        .collect()
}

fn build(dims: usize, n: usize, seed: u64, config: IndexConfig) -> AdaptiveClusterIndex {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut index = AdaptiveClusterIndex::new(config).unwrap();
    for i in 0..n as u32 {
        index.insert(ObjectId(i), random_rect(&mut rng, dims)).unwrap();
    }
    index
}

#[test]
fn queries_run_concurrently_over_a_shared_reference() {
    let dims = 4;
    let mut index = build(dims, 2000, 1, IndexConfig::memory(dims));
    // Warm up so the tree has real clusters, then freeze it.
    let mut rng = StdRng::seed_from_u64(2);
    for q in mixed_queries(&mut rng, dims, 150) {
        index.execute(&q);
    }
    let queries = mixed_queries(&mut rng, dims, 40);
    let sequential: Vec<_> = queries.iter().map(|q| index.query(q).matches).collect();

    // `query` takes `&self`: scoped threads share the index immutably.
    let shared = &index;
    let concurrent: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(10)
            .map(|qs| scope.spawn(move || qs.iter().map(|q| shared.query(q).matches).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader thread panicked"))
            .collect()
    });
    assert_eq!(sequential, concurrent);
    // Read-only queries recorded no statistics and triggered no reorg.
    assert_eq!(index.total_queries(), 150);
}

#[test]
fn execute_batch_is_byte_identical_to_sequential_execution() {
    let dims = 5;
    let mut sequential = build(dims, 3000, 7, IndexConfig::memory(dims));
    let mut batched = build(dims, 3000, 7, IndexConfig::memory(dims));

    let mut rng = StdRng::seed_from_u64(8);
    // 370 queries: crosses three reorganization boundaries (period 100).
    let queries = mixed_queries(&mut rng, dims, 370);
    let seq_results: Vec<_> = queries.iter().map(|q| sequential.execute(q)).collect();
    let batch_results = batched.execute_batch(&queries, 4);

    assert_eq!(seq_results.len(), batch_results.len());
    for (k, (s, b)) in seq_results.iter().zip(&batch_results).enumerate() {
        assert_eq!(s.matches, b.matches, "match set diverged on query {k}");
        assert_eq!(s.metrics.stats, b.metrics.stats, "metrics diverged on query {k}");
    }
    // Identical adaptive state: same reorganization decisions, same tree.
    assert_eq!(sequential.total_queries(), batched.total_queries());
    assert_eq!(sequential.reorganizations(), batched.reorganizations());
    assert_eq!(sequential.total_merges(), batched.total_merges());
    assert_eq!(sequential.total_splits(), batched.total_splits());
    assert_eq!(sequential.cluster_count(), batched.cluster_count());
    assert!(
        (sequential.verify_fraction() - batched.verify_fraction()).abs() < 1e-15,
        "epoch byte counters diverged"
    );
    assert_eq!(sequential.snapshots(), batched.snapshots());
    sequential.check_invariants().unwrap();
    batched.check_invariants().unwrap();
}

#[test]
fn batch_thread_count_does_not_change_outcomes() {
    let dims = 3;
    let mut rng = StdRng::seed_from_u64(21);
    let queries = mixed_queries(&mut rng, dims, 230);
    let mut reference: Option<(Vec<Vec<ObjectId>>, Vec<_>)> = None;
    for threads in [1usize, 2, 4, 7] {
        let mut index = build(dims, 1500, 20, IndexConfig::memory(dims));
        let results = index.execute_batch(&queries, threads);
        let matches: Vec<Vec<ObjectId>> = results.into_iter().map(|r| r.matches).collect();
        let snaps = index.snapshots();
        match &reference {
            None => reference = Some((matches, snaps)),
            Some((m, s)) => {
                assert_eq!(m, &matches, "threads={threads}");
                assert_eq!(s, &snaps, "threads={threads}");
            }
        }
    }
}

#[test]
fn query_recorded_plus_apply_stats_equals_execute() {
    let dims = 4;
    let mut via_execute = build(dims, 1200, 3, IndexConfig::memory(dims));
    let mut via_delta = build(dims, 1200, 3, IndexConfig::memory(dims));
    let mut rng = StdRng::seed_from_u64(4);
    // Stay under one reorganization period so manual deltas may be
    // grouped freely before being applied.
    let queries = mixed_queries(&mut rng, dims, 99);

    let mut delta = StatsDelta::new();
    for q in &queries {
        let a = via_execute.execute(q);
        let b = via_delta.query_recorded(q, &mut delta);
        assert_eq!(a.matches, b.matches);
    }
    assert_eq!(delta.queries(), 99);
    assert!(!delta.is_empty());
    via_delta.apply_stats(&delta);

    assert_eq!(via_execute.total_queries(), via_delta.total_queries());
    let r = via_execute.reorganize();
    let d = via_delta.reorganize();
    assert_eq!((r.merges, r.splits), (d.merges, d.splits));
    assert_eq!(via_execute.snapshots(), via_delta.snapshots());
}

#[test]
fn try_query_and_try_execute_report_dimension_mismatch() {
    let mut index = build(3, 50, 5, IndexConfig::memory(3));
    let bad = SpatialQuery::point_enclosing(vec![0.5]);
    assert!(matches!(
        index.try_query(&bad),
        Err(IndexError::DimensionMismatch { expected: 3, actual: 1 })
    ));
    assert!(matches!(
        index.try_execute(&bad),
        Err(IndexError::DimensionMismatch { expected: 3, actual: 1 })
    ));
    let before = index.total_queries();
    assert!(matches!(
        index.try_execute_batch(&[SpatialQuery::point_enclosing(vec![0.5; 3]), bad], 2),
        Err(IndexError::DimensionMismatch { .. })
    ));
    // A rejected batch executes nothing.
    assert_eq!(index.total_queries(), before);

    let good = SpatialQuery::point_enclosing(vec![0.5, 0.5, 0.5]);
    let q = index.try_query(&good).unwrap();
    let e = index.try_execute(&good).unwrap();
    assert_eq!(q.matches, e.matches);
    assert_eq!(index.total_queries(), before + 1);
}

#[test]
#[should_panic(expected = "query dimensionality")]
fn query_panics_on_dimension_mismatch() {
    let index = build(3, 10, 6, IndexConfig::memory(3));
    index.query(&SpatialQuery::point_enclosing(vec![0.5]));
}

#[test]
#[should_panic(expected = "query dimensionality")]
fn execute_batch_panics_on_dimension_mismatch() {
    let mut index = build(3, 10, 6, IndexConfig::memory(3));
    index.execute_batch(&[SpatialQuery::point_enclosing(vec![0.5])], 2);
}

#[test]
#[should_panic(expected = "at least one thread")]
fn execute_batch_rejects_zero_threads() {
    let mut index = build(2, 10, 6, IndexConfig::memory(2));
    index.execute_batch(&[SpatialQuery::point_enclosing(vec![0.5, 0.5])], 0);
}

/// Regression for the O(n) `position()` scans `get` used to perform: a
/// lookup must do no per-object work, so its cost cannot scale with the
/// index size. Timing 50× more objects with the same number of lookups
/// in the same process keeps the bound complexity-sensitive but robust:
/// a linear-scan implementation is ~50× slower on the large index, an
/// O(1) map is within noise.
#[test]
fn get_does_no_per_object_work_at_100k_objects() {
    let dims = 4;
    let lookups = 200_000u32;
    let small_n = 2_000u32;
    let large_n = 100_000u32;
    let config = |dims| {
        let mut c = IndexConfig::memory(dims);
        c.reorg_period = 0; // keep both indexes a single root cluster
        c
    };
    let small = build(dims, small_n as usize, 30, config(dims));
    let large = build(dims, large_n as usize, 31, config(dims));

    let time_gets = |index: &AdaptiveClusterIndex, n: u32| {
        let started = Instant::now();
        let mut found = 0u32;
        for k in 0..lookups {
            if index.get(ObjectId(k % n)).is_some() {
                found += 1;
            }
        }
        assert_eq!(found, lookups);
        started.elapsed()
    };
    // Warm both paths once before timing.
    time_gets(&small, small_n);
    let t_small = time_gets(&small, small_n);
    let t_large = time_gets(&large, large_n);
    let ratio = t_large.as_secs_f64() / t_small.as_secs_f64().max(1e-9);
    assert!(
        ratio < 10.0,
        "get cost scaled with index size (50x objects -> {ratio:.1}x slower): \
         lookups are doing per-object work"
    );
}

#[test]
#[should_panic(expected = "different clustering state")]
fn recording_into_one_delta_across_a_reorganization_panics() {
    let dims = 4;
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 0; // manual reorganizations
    let mut index = build(dims, 1500, 40, config);
    let mut rng = StdRng::seed_from_u64(41);

    let mut delta = StatsDelta::new();
    index.query_recorded(
        &SpatialQuery::point_enclosing(vec![0.5; 4]),
        &mut delta,
    );
    // Selective queries then a reorganization that changes the clustering.
    for q in mixed_queries(&mut rng, dims, 120) {
        index.execute(&q);
    }
    let report = index.reorganize();
    assert!(report.changed(), "test premise: clustering must change");
    // The delta is stamped with the old structural epoch: recording more
    // queries into it must be rejected rather than silently mixed.
    index.query_recorded(
        &SpatialQuery::point_enclosing(vec![0.5; 4]),
        &mut delta,
    );
}

#[test]
fn applying_a_stale_delta_drops_cluster_increments_but_counts_queries() {
    let dims = 4;
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 0;
    let mut index = build(dims, 1500, 42, config);
    let mut rng = StdRng::seed_from_u64(43);

    // Record a delta against the initial single-root clustering.
    let mut stale = StatsDelta::new();
    for _ in 0..10 {
        index.query_recorded(
            &SpatialQuery::point_enclosing(
                (0..dims).map(|_| rng.gen_range(0.0..=1.0)).collect(),
            ),
            &mut stale,
        );
    }
    // Change the clustering: the old slots' statistics may now belong to
    // different (or recycled) clusters.
    for q in mixed_queries(&mut rng, dims, 120) {
        index.execute(&q);
    }
    assert!(index.reorganize().changed());

    let probabilities_before: Vec<f64> = index
        .snapshots()
        .iter()
        .map(|s| s.access_probability)
        .collect();
    let queries_before = index.total_queries();
    index.apply_stats(&stale);
    // Global totals applied, per-cluster increments dropped: every
    // numerator (q_eff + q_count) is unchanged, so no probability rose.
    assert_eq!(index.total_queries(), queries_before + 10);
    for (before, snap) in probabilities_before.iter().zip(index.snapshots()) {
        assert!(
            snap.access_probability <= before + 1e-12,
            "stale delta inflated cluster {}: {} -> {}",
            snap.id,
            before,
            snap.access_probability
        );
    }
    index.check_invariants().unwrap();
}
