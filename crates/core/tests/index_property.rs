//! Property-based tests: arbitrary operation sequences against a naive
//! reference model, with structural invariants checked throughout.

use acx_core::{AdaptiveClusterIndex, IndexConfig};
use acx_geom::{HyperRect, ObjectId, Scalar, SpatialQuery};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, Vec<(Scalar, Scalar)>),
    Remove(u32),
    Query(Vec<(Scalar, Scalar)>, u8),
    Reorganize,
}

fn pair() -> impl Strategy<Value = (Scalar, Scalar)> {
    (0.0f32..=1.0, 0.0f32..=1.0).prop_map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
}

fn op(dims: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u32..64, prop::collection::vec(pair(), dims)).prop_map(|(id, ps)| Op::Insert(id, ps)),
        2 => (0u32..64).prop_map(Op::Remove),
        3 => (prop::collection::vec(pair(), dims), 0u8..4).prop_map(|(ps, rel)| Op::Query(ps, rel)),
        1 => Just(Op::Reorganize),
    ]
}

fn rect_of(pairs: &[(Scalar, Scalar)]) -> HyperRect {
    let lo: Vec<Scalar> = pairs.iter().map(|p| p.0).collect();
    let hi: Vec<Scalar> = pairs.iter().map(|p| p.1).collect();
    HyperRect::from_bounds(&lo, &hi).unwrap()
}

fn query_of(pairs: &[(Scalar, Scalar)], rel: u8) -> SpatialQuery {
    match rel {
        0 => SpatialQuery::intersection(rect_of(pairs)),
        1 => SpatialQuery::containment(rect_of(pairs)),
        2 => SpatialQuery::enclosure(rect_of(pairs)),
        _ => SpatialQuery::point_enclosing(pairs.iter().map(|p| p.0).collect()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The index behaves exactly like a flat map + filter, regardless of
    /// the interleaving of inserts, removes, queries and reorganizations.
    #[test]
    fn index_agrees_with_naive_model(ops in prop::collection::vec(op(3), 1..120)) {
        let mut config = IndexConfig::memory(3);
        config.reorg_period = 17; // odd period to interleave automatic reorgs
        config.min_epoch_queries = 5;
        let mut index = AdaptiveClusterIndex::new(config).unwrap();
        let mut model: Vec<(u32, HyperRect)> = Vec::new();

        for op in ops {
            match op {
                Op::Insert(id, pairs) => {
                    let r = rect_of(&pairs);
                    let in_model = model.iter().any(|(mid, _)| *mid == id);
                    let res = index.insert(ObjectId(id), r.clone());
                    prop_assert_eq!(res.is_err(), in_model);
                    if !in_model {
                        model.push((id, r));
                    }
                }
                Op::Remove(id) => {
                    let pos = model.iter().position(|(mid, _)| *mid == id);
                    let res = index.remove(ObjectId(id));
                    match pos {
                        Some(k) => {
                            let (_, expected) = model.swap_remove(k);
                            prop_assert_eq!(res.unwrap(), expected);
                        }
                        None => prop_assert!(res.is_err()),
                    }
                }
                Op::Query(pairs, rel) => {
                    let q = query_of(&pairs, rel);
                    let mut got = index.execute(&q).matches;
                    got.sort_unstable();
                    let mut want: Vec<ObjectId> = model
                        .iter()
                        .filter(|(_, r)| q.matches_rect(r))
                        .map(|(id, _)| ObjectId(*id))
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
                Op::Reorganize => {
                    index.reorganize();
                }
            }
        }
        prop_assert_eq!(index.len(), model.len());
        index.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// Every query explores at least the clusters needed: the verified
    /// object count can never be below the number of matches, and the
    /// priced cost is monotone in the scenario (disk ≥ memory) for the
    /// same execution.
    #[test]
    fn metrics_are_internally_consistent(
        objects in prop::collection::vec(prop::collection::vec(pair(), 3), 1..80),
        window in prop::collection::vec(pair(), 3),
    ) {
        let mut config = IndexConfig::memory(3);
        config.reorg_period = 0;
        let mut index = AdaptiveClusterIndex::new(config).unwrap();
        for (i, pairs) in objects.iter().enumerate() {
            index.insert(ObjectId(i as u32), rect_of(pairs)).unwrap();
        }
        let q = SpatialQuery::intersection(rect_of(&window));
        let result = index.execute(&q);
        let s = &result.metrics.stats;
        prop_assert!(s.objects_verified >= result.matches.len() as u64);
        prop_assert!(s.clusters_explored <= s.signature_checks);
        prop_assert!(s.verified_bytes >= s.objects_verified * 4);
        prop_assert!(result.metrics.priced_ms > 0.0);
        // Pricing the same counters under the disk model adds seek and
        // transfer cost.
        let disk_model = IndexConfig::disk(3).cost_model();
        prop_assert!(disk_model.price(s) > result.metrics.priced_ms);
    }
}
