//! Behavioral tests of the adaptive clustering index: CRUD semantics,
//! query correctness against a naive reference, reorganization dynamics
//! (split, merge, stability), persistence, and invariant preservation.

use acx_core::{AdaptiveClusterIndex, IndexConfig, IndexError};
use acx_geom::{HyperRect, ObjectId, Scalar, SpatialQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rect(lo: &[Scalar], hi: &[Scalar]) -> HyperRect {
    HyperRect::from_bounds(lo, hi).unwrap()
}

/// A uniform random rectangle: per dimension, an ordered pair of uniforms.
fn random_rect(rng: &mut StdRng, dims: usize) -> HyperRect {
    let mut lo = Vec::with_capacity(dims);
    let mut hi = Vec::with_capacity(dims);
    for _ in 0..dims {
        let a: f32 = rng.gen_range(0.0..=1.0);
        let b: f32 = rng.gen_range(0.0..=1.0);
        lo.push(a.min(b));
        hi.push(a.max(b));
    }
    rect(&lo, &hi)
}

/// Small random rectangle (selective as an intersection window).
fn small_rect(rng: &mut StdRng, dims: usize, extent: f32) -> HyperRect {
    let mut lo = Vec::with_capacity(dims);
    let mut hi = Vec::with_capacity(dims);
    for _ in 0..dims {
        let a: f32 = rng.gen_range(0.0..=1.0 - extent);
        lo.push(a);
        hi.push(a + extent);
    }
    rect(&lo, &hi)
}

/// Reference implementation: exhaustive filter.
fn naive_matches(objects: &[(u32, HyperRect)], query: &SpatialQuery) -> Vec<ObjectId> {
    let mut out: Vec<ObjectId> = objects
        .iter()
        .filter(|(_, r)| query.matches_rect(r))
        .map(|(id, _)| ObjectId(*id))
        .collect();
    out.sort_unstable();
    out
}

fn sorted(mut v: Vec<ObjectId>) -> Vec<ObjectId> {
    v.sort_unstable();
    v
}

#[test]
fn empty_index_answers_empty() {
    let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(4)).unwrap();
    assert!(index.is_empty());
    assert_eq!(index.cluster_count(), 1);
    let r = index.execute(&SpatialQuery::point_enclosing(vec![0.5; 4]));
    assert!(r.matches.is_empty());
    // Even an empty query explores the root.
    assert_eq!(r.metrics.stats.clusters_explored, 1);
}

#[test]
fn insert_then_query_all_relations() {
    let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(2)).unwrap();
    index.insert(ObjectId(1), rect(&[0.2, 0.2], &[0.4, 0.4])).unwrap();
    index.insert(ObjectId(2), rect(&[0.6, 0.6], &[0.9, 0.9])).unwrap();

    let inter = index.execute(&SpatialQuery::intersection(rect(&[0.3, 0.3], &[0.7, 0.7])));
    assert_eq!(sorted(inter.matches), vec![ObjectId(1), ObjectId(2)]);

    let cont = index.execute(&SpatialQuery::containment(rect(&[0.5, 0.5], &[1.0, 1.0])));
    assert_eq!(cont.matches, vec![ObjectId(2)]);

    let encl = index.execute(&SpatialQuery::enclosure(rect(&[0.25, 0.25], &[0.35, 0.35])));
    assert_eq!(encl.matches, vec![ObjectId(1)]);

    let point = index.execute(&SpatialQuery::point_enclosing(vec![0.7, 0.7]));
    assert_eq!(point.matches, vec![ObjectId(2)]);
}

#[test]
fn duplicate_insert_is_rejected() {
    let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(2)).unwrap();
    let r = rect(&[0.1, 0.1], &[0.2, 0.2]);
    index.insert(ObjectId(7), r.clone()).unwrap();
    assert!(matches!(
        index.insert(ObjectId(7), r),
        Err(IndexError::DuplicateObject(7))
    ));
}

#[test]
fn dimension_mismatch_is_rejected() {
    let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(3)).unwrap();
    assert!(matches!(
        index.insert(ObjectId(1), rect(&[0.1], &[0.2])),
        Err(IndexError::DimensionMismatch { expected: 3, actual: 1 })
    ));
}

#[test]
#[should_panic(expected = "query dimensionality")]
fn query_dimension_mismatch_panics() {
    let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(3)).unwrap();
    index.execute(&SpatialQuery::point_enclosing(vec![0.5]));
}

#[test]
fn remove_and_get_roundtrip() {
    let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(2)).unwrap();
    let r = rect(&[0.3, 0.4], &[0.5, 0.6]);
    index.insert(ObjectId(9), r.clone()).unwrap();
    assert_eq!(index.get(ObjectId(9)), Some(r.clone()));
    assert!(index.contains(ObjectId(9)));
    let removed = index.remove(ObjectId(9)).unwrap();
    assert_eq!(removed, r);
    assert!(!index.contains(ObjectId(9)));
    assert!(matches!(
        index.remove(ObjectId(9)),
        Err(IndexError::UnknownObject(9))
    ));
    let q = index.execute(&SpatialQuery::point_enclosing(vec![0.4, 0.5]));
    assert!(q.matches.is_empty());
}

#[test]
fn update_moves_object() {
    let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(2)).unwrap();
    index.insert(ObjectId(1), rect(&[0.0, 0.0], &[0.1, 0.1])).unwrap();
    let old = index
        .update(ObjectId(1), rect(&[0.8, 0.8], &[0.9, 0.9]))
        .unwrap();
    assert_eq!(old, rect(&[0.0, 0.0], &[0.1, 0.1]));
    let hit = index.execute(&SpatialQuery::point_enclosing(vec![0.85, 0.85]));
    assert_eq!(hit.matches, vec![ObjectId(1)]);
    let miss = index.execute(&SpatialQuery::point_enclosing(vec![0.05, 0.05]));
    assert!(miss.matches.is_empty());
}

#[test]
fn query_results_match_naive_reference_before_and_after_reorg() {
    let mut rng = StdRng::seed_from_u64(11);
    let dims = 4;
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 0; // manual reorganizations only
    let mut index = AdaptiveClusterIndex::new(config).unwrap();
    let mut objects = Vec::new();
    for i in 0..1500u32 {
        let r = random_rect(&mut rng, dims);
        index.insert(ObjectId(i), r.clone()).unwrap();
        objects.push((i, r));
    }
    let queries: Vec<SpatialQuery> = (0..150)
        .map(|k| match k % 3 {
            0 => SpatialQuery::intersection(small_rect(&mut rng, dims, 0.1)),
            1 => SpatialQuery::point_enclosing(
                (0..dims).map(|_| rng.gen_range(0.0..=1.0)).collect(),
            ),
            _ => SpatialQuery::containment(small_rect(&mut rng, dims, 0.6)),
        })
        .collect();

    for q in &queries {
        assert_eq!(sorted(index.execute(q).matches), naive_matches(&objects, q));
    }
    let report = index.reorganize();
    assert!(report.splits > 0, "selective workload should split: {report:?}");
    index.check_invariants().unwrap();
    for q in &queries {
        assert_eq!(
            sorted(index.execute(q).matches),
            naive_matches(&objects, q),
            "mismatch after reorganization"
        );
    }
}

#[test]
fn reorganization_reduces_verified_objects_on_selective_workload() {
    let mut rng = StdRng::seed_from_u64(42);
    let dims = 4;
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 0;
    let mut index = AdaptiveClusterIndex::new(config).unwrap();
    for i in 0..3000u32 {
        index.insert(ObjectId(i), random_rect(&mut rng, dims)).unwrap();
    }
    let mut points: Vec<Vec<f32>> = Vec::new();
    for _ in 0..200 {
        points.push((0..dims).map(|_| rng.gen_range(0.0..=1.0)).collect());
    }
    let mut before = 0u64;
    for p in &points {
        before += index
            .execute(&SpatialQuery::point_enclosing(p.clone()))
            .metrics
            .stats
            .objects_verified;
    }
    index.reorganize();
    index.check_invariants().unwrap();
    let mut after = 0u64;
    for p in &points {
        after += index
            .execute(&SpatialQuery::point_enclosing(p.clone()))
            .metrics
            .stats
            .objects_verified;
    }
    assert!(
        after < before / 2,
        "adaptation should at least halve verification work: {before} -> {after}"
    );
}

#[test]
fn broad_queries_trigger_merges_back_to_coarser_clustering() {
    let mut rng = StdRng::seed_from_u64(3);
    let dims = 3;
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 0;
    let mut index = AdaptiveClusterIndex::new(config).unwrap();
    for i in 0..2000u32 {
        index.insert(ObjectId(i), random_rect(&mut rng, dims)).unwrap();
    }
    // Phase 1: selective point queries → splits.
    for _ in 0..100 {
        let p: Vec<f32> = (0..dims).map(|_| rng.gen_range(0.0..=1.0)).collect();
        index.execute(&SpatialQuery::point_enclosing(p));
    }
    index.reorganize();
    let split_clusters = index.cluster_count();
    assert!(split_clusters > 1);
    // Phase 2: only full-domain intersection queries → every cluster is
    // explored by every query, separate management is pure overhead.
    let everything = SpatialQuery::intersection(HyperRect::unit(dims));
    let mut merges = 0;
    for _ in 0..10 {
        for _ in 0..100 {
            index.execute(&everything);
        }
        let report = index.reorganize();
        merges += report.merges;
        index.check_invariants().unwrap();
        if index.cluster_count() == 1 {
            break;
        }
    }
    assert!(merges > 0, "shifted query pattern should cause merges");
    assert!(
        index.cluster_count() < split_clusters,
        "cluster count should shrink: {} -> {}",
        split_clusters,
        index.cluster_count()
    );
}

#[test]
fn clustering_reaches_stable_state_under_fixed_distribution() {
    // Paper §7.1: with an unchanged query distribution the clustering
    // stabilizes in fewer than 10 reorganization steps.
    let mut rng = StdRng::seed_from_u64(7);
    let dims = 4;
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 0;
    let mut index = AdaptiveClusterIndex::new(config).unwrap();
    for i in 0..3000u32 {
        index.insert(ObjectId(i), random_rect(&mut rng, dims)).unwrap();
    }
    let mut query_rng = StdRng::seed_from_u64(1234);
    let mut stable_steps = 0;
    let mut steps = 0;
    for _ in 0..15 {
        for _ in 0..100 {
            let w = small_rect(&mut query_rng, dims, 0.05);
            index.execute(&SpatialQuery::intersection(w));
        }
        let report = index.reorganize();
        steps += 1;
        // Stable state: structural churn below 2 % of the clustering.
        let churn = (report.merges + report.splits) as f64 / report.clusters_after.max(1) as f64;
        if churn < 0.02 {
            stable_steps += 1;
            if stable_steps >= 2 {
                break;
            }
        } else {
            stable_steps = 0;
        }
    }
    assert!(
        stable_steps >= 2,
        "clustering did not stabilize within {steps} steps"
    );
    index.check_invariants().unwrap();
}

#[test]
fn automatic_reorganization_fires_every_period() {
    let mut rng = StdRng::seed_from_u64(21);
    let dims = 3;
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 50;
    let mut index = AdaptiveClusterIndex::new(config).unwrap();
    for i in 0..1000u32 {
        index.insert(ObjectId(i), random_rect(&mut rng, dims)).unwrap();
    }
    assert_eq!(index.reorganizations(), 0);
    for _ in 0..49 {
        index.execute(&SpatialQuery::point_enclosing(vec![0.5; 3]));
    }
    assert_eq!(index.reorganizations(), 0);
    index.execute(&SpatialQuery::point_enclosing(vec![0.5; 3]));
    assert_eq!(index.reorganizations(), 1);
    for _ in 0..50 {
        index.execute(&SpatialQuery::point_enclosing(vec![0.5; 3]));
    }
    assert_eq!(index.reorganizations(), 2);
}

#[test]
fn insertion_prefers_lowest_access_probability() {
    let mut rng = StdRng::seed_from_u64(5);
    let dims = 2;
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 0;
    let mut index = AdaptiveClusterIndex::new(config).unwrap();
    // Objects concentrated in the first quarter of d1 → splittable cell.
    for i in 0..800u32 {
        let a: f32 = rng.gen_range(0.0..0.2);
        let b: f32 = a + rng.gen_range(0.0..0.05);
        let c: f32 = rng.gen_range(0.0..=0.5);
        let d: f32 = c + rng.gen_range(0.0f32..=0.5).min(1.0 - c);
        index.insert(ObjectId(i), rect(&[a, c], &[b, d])).unwrap();
    }
    // Queries that *miss* the concentration → the cell is cold.
    for _ in 0..100 {
        index.execute(&SpatialQuery::point_enclosing(vec![0.9, 0.5]));
    }
    index.reorganize();
    assert!(index.cluster_count() > 1, "expected a split");
    // Make the root hot again (epoch restarted at reorganization).
    for _ in 0..50 {
        index.execute(&SpatialQuery::point_enclosing(vec![0.9, 0.5]));
    }
    let before = index.snapshots();
    // New object qualifying for the cold child: must land there.
    index
        .insert(ObjectId(100_000), rect(&[0.05, 0.3], &[0.08, 0.6]))
        .unwrap();
    let after = index.snapshots();
    let grew: Vec<_> = after
        .iter()
        .filter(|s| {
            before
                .iter()
                .find(|b| b.id == s.id)
                .is_none_or(|b| b.objects < s.objects)
        })
        .collect();
    assert_eq!(grew.len(), 1);
    assert!(
        grew[0].parent.is_some(),
        "object should go to the cold child, not the hot root"
    );
    index.check_invariants().unwrap();
}

#[test]
fn mixed_churn_preserves_invariants_and_correctness() {
    let mut rng = StdRng::seed_from_u64(99);
    let dims = 3;
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 40;
    let mut index = AdaptiveClusterIndex::new(config).unwrap();
    let mut objects: Vec<(u32, HyperRect)> = Vec::new();
    let mut next_id = 0u32;
    for round in 0..12 {
        // Insert a batch.
        for _ in 0..150 {
            let r = random_rect(&mut rng, dims);
            index.insert(ObjectId(next_id), r.clone()).unwrap();
            objects.push((next_id, r));
            next_id += 1;
        }
        // Remove a random subset.
        for _ in 0..40 {
            if objects.is_empty() {
                break;
            }
            let k = rng.gen_range(0..objects.len());
            let (id, _) = objects.swap_remove(k);
            index.remove(ObjectId(id)).unwrap();
        }
        // Query (triggers automatic reorganizations).
        for _ in 0..25 {
            let q = if round % 2 == 0 {
                SpatialQuery::intersection(small_rect(&mut rng, dims, 0.15))
            } else {
                SpatialQuery::enclosure(small_rect(&mut rng, dims, 0.01))
            };
            assert_eq!(
                sorted(index.execute(&q).matches),
                naive_matches(&objects, &q),
                "round {round}"
            );
        }
        index.check_invariants().unwrap();
    }
    assert_eq!(index.len(), objects.len());
}

#[test]
fn snapshots_reflect_tree_shape() {
    let mut rng = StdRng::seed_from_u64(17);
    let dims = 3;
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 0;
    let mut index = AdaptiveClusterIndex::new(config).unwrap();
    for i in 0..2000u32 {
        index.insert(ObjectId(i), random_rect(&mut rng, dims)).unwrap();
    }
    for _ in 0..100 {
        let p: Vec<f32> = (0..dims).map(|_| rng.gen_range(0.0..=1.0)).collect();
        index.execute(&SpatialQuery::point_enclosing(p));
    }
    index.reorganize();
    let snaps = index.snapshots();
    assert_eq!(snaps.len(), index.cluster_count());
    let root_count = snaps.iter().filter(|s| s.parent.is_none()).count();
    assert_eq!(root_count, 1);
    let total_objects: usize = snaps.iter().map(|s| s.objects).sum();
    assert_eq!(total_objects, index.len());
    // Depths are consistent with parent links.
    for s in &snaps {
        if let Some(p) = s.parent {
            let parent = snaps.iter().find(|x| x.id == p).unwrap();
            assert_eq!(parent.depth + 1, s.depth);
        } else {
            assert_eq!(s.depth, 0);
        }
        assert!(!s.signature.is_empty());
    }
}

#[test]
fn disk_scenario_produces_fewer_clusters_than_memory() {
    // Paper Fig. 7: the 15 ms seek makes splits far less attractive, so
    // the disk-based index materializes far fewer clusters.
    let dims = 4;
    let build = |config: IndexConfig| {
        let mut rng = StdRng::seed_from_u64(31);
        let mut index = AdaptiveClusterIndex::new(config).unwrap();
        for i in 0..4000u32 {
            index.insert(ObjectId(i), random_rect(&mut rng, dims)).unwrap();
        }
        let mut qrng = StdRng::seed_from_u64(77);
        for _ in 0..3 {
            for _ in 0..200 {
                let p: Vec<f32> = (0..dims).map(|_| qrng.gen_range(0.0..=1.0)).collect();
                index.execute(&SpatialQuery::point_enclosing(p));
            }
            index.reorganize();
        }
        index
    };
    let mut mem_cfg = IndexConfig::memory(dims);
    mem_cfg.reorg_period = 0;
    let mut disk_cfg = IndexConfig::disk(dims);
    disk_cfg.reorg_period = 0;
    let mem = build(mem_cfg);
    let disk = build(disk_cfg);
    assert!(
        disk.cluster_count() < mem.cluster_count(),
        "disk {} vs memory {}",
        disk.cluster_count(),
        mem.cluster_count()
    );
}

#[test]
fn save_load_roundtrip_preserves_contents_and_results() {
    let mut rng = StdRng::seed_from_u64(55);
    let dims = 3;
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 0;
    let mut index = AdaptiveClusterIndex::new(config.clone()).unwrap();
    let mut objects = Vec::new();
    for i in 0..1200u32 {
        let r = random_rect(&mut rng, dims);
        index.insert(ObjectId(i), r.clone()).unwrap();
        objects.push((i, r));
    }
    for _ in 0..100 {
        let p: Vec<f32> = (0..dims).map(|_| rng.gen_range(0.0..=1.0)).collect();
        index.execute(&SpatialQuery::point_enclosing(p));
    }
    index.reorganize();
    let clusters_saved = index.cluster_count();

    let mut path = std::env::temp_dir();
    path.push(format!("acx-index-roundtrip-{}.acx", std::process::id()));
    index.save(&path).unwrap();
    let mut restored = AdaptiveClusterIndex::load(&path, config).unwrap();
    std::fs::remove_file(&path).unwrap();

    assert_eq!(restored.len(), index.len());
    assert_eq!(restored.cluster_count(), clusters_saved);
    restored.check_invariants().unwrap();
    for _ in 0..50 {
        let q = SpatialQuery::intersection(small_rect(&mut rng, dims, 0.2));
        assert_eq!(
            sorted(restored.execute(&q).matches),
            naive_matches(&objects, &q)
        );
    }
}

#[test]
fn load_rejects_wrong_dimensionality() {
    let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(2)).unwrap();
    index.insert(ObjectId(1), rect(&[0.1, 0.1], &[0.2, 0.2])).unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!("acx-index-wrongdims-{}.acx", std::process::id()));
    index.save(&path).unwrap();
    let err = AdaptiveClusterIndex::load(&path, IndexConfig::memory(5));
    std::fs::remove_file(&path).unwrap();
    assert!(matches!(
        err,
        Err(IndexError::DimensionMismatch { expected: 5, actual: 2 })
    ));
}

#[test]
fn priced_cost_drops_after_adaptation() {
    // The headline claim: adaptive clustering beats sequential scan —
    // i.e. the priced execution cost falls below the initial root-only
    // (scan-equivalent) cost once clustering kicks in.
    let mut rng = StdRng::seed_from_u64(2024);
    let dims = 6;
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 0;
    let mut index = AdaptiveClusterIndex::new(config).unwrap();
    for i in 0..5000u32 {
        index.insert(ObjectId(i), random_rect(&mut rng, dims)).unwrap();
    }
    let mut qrng = StdRng::seed_from_u64(9);
    let gen_query = |rng: &mut StdRng| {
        SpatialQuery::point_enclosing((0..dims).map(|_| rng.gen_range(0.0..=1.0)).collect())
    };
    let mut cost_before = 0.0;
    for _ in 0..100 {
        let q = gen_query(&mut qrng);
        cost_before += index.execute(&q).metrics.priced_ms;
    }
    index.reorganize();
    let mut cost_after = 0.0;
    for _ in 0..100 {
        let q = gen_query(&mut qrng);
        cost_after += index.execute(&q).metrics.priced_ms;
    }
    assert!(
        cost_after < cost_before,
        "priced cost should drop: {cost_before:.4} -> {cost_after:.4}"
    );
}

#[test]
fn fresh_child_cluster_beats_root_at_equal_probability() {
    // Paper §3.5: insertion breaks access-probability ties towards the
    // most specific cluster. Build a root + child tree directly through
    // the persistence layer (statistics restart empty after a load, so
    // both clusters sit at identical access probability).
    use acx_core::Signature;
    use acx_storage::{ClusterRecord, FileStore};

    let dims = 2;
    let root_sig = Signature::root(dims);
    // Child: dim-0 interval starts and ends both in [0, 0.25).
    let child_sig = root_sig.specialize(0, 4, 0, 0);
    let records = [
        ClusterRecord {
            signature: [u32::MAX.to_le_bytes().as_slice(), &root_sig.to_bytes()].concat(),
            ids: vec![1],
            coords: vec![0.5, 0.9, 0.5, 0.9],
        },
        ClusterRecord {
            signature: [0u32.to_le_bytes().as_slice(), &child_sig.to_bytes()].concat(),
            ids: vec![2],
            coords: vec![0.1, 0.2, 0.3, 0.8],
        },
    ];
    let mut path = std::env::temp_dir();
    path.push(format!("acx-tie-break-{}.acx", std::process::id()));
    FileStore::save(&path, dims, &records).unwrap();
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 0;
    let mut index = AdaptiveClusterIndex::load(&path, config).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(index.cluster_count(), 2);

    let child_objects = |index: &AdaptiveClusterIndex| -> usize {
        index
            .snapshots()
            .iter()
            .filter(|s| s.depth == 1)
            .map(|s| s.objects)
            .sum()
    };

    // Equal (zero) probability: both clusters accept the object, the
    // fresh child is more specific and must host it.
    let before = child_objects(&index);
    index
        .insert(ObjectId(10), rect(&[0.05, 0.4], &[0.15, 0.6]))
        .unwrap();
    assert_eq!(
        child_objects(&index),
        before + 1,
        "fresh child cluster must beat the root at equal probability"
    );

    // Equal *nonzero* probability: point queries with the dim-0
    // coordinate inside the child's variation interval match both
    // signatures, keeping both access probabilities at exactly 1.
    for k in 0..40 {
        let v = 0.01 + (k as f32) * 0.005; // stays below 0.25
        index.execute(&SpatialQuery::point_enclosing(vec![v, 0.5]));
    }
    let before = child_objects(&index);
    index
        .insert(ObjectId(11), rect(&[0.02, 0.3], &[0.2, 0.7]))
        .unwrap();
    assert_eq!(
        child_objects(&index),
        before + 1,
        "the deeper cluster must win nonzero probability ties"
    );
    index.check_invariants().unwrap();
}
