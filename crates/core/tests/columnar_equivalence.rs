//! The columnar scan kernels must be **bit-identical** to the scalar
//! oracle — not just in match sets, but in every access counter
//! (`AccessStats`), every recorded statistic (`StatsDelta`), and every
//! reorganization decision derived from them. Indexes differing only in
//! [`ScanMode`] (member verification *and* candidate matching), in
//! whether zone maps may skip blocks, and in where the candidate
//! statistics live ([`StatsLayout`]: index-wide arena vs per-cluster
//! columns) are driven through identical workloads and compared query
//! by query.

use acx_core::{
    AdaptiveClusterIndex, IndexConfig, QueryScratch, ScanMode, StatsDelta, StatsLayout,
};
use acx_geom::{HyperRect, ObjectId, SpatialQuery};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The full oracle: scalar member verification, scalar candidate loop,
/// per-cluster statistics columns.
fn oracle_config(config: &IndexConfig) -> IndexConfig {
    IndexConfig {
        scan_mode: ScanMode::ScalarOracle,
        candidate_scan: ScanMode::ScalarOracle,
        stats_layout: StatsLayout::PerClusterOracle,
        ..config.clone()
    }
}

/// Every bitmask/zone-map/statistics-layout execution strategy that
/// must equal the oracle: the default (all columnar, zones on, arena
/// statistics), zones off, the mixed modes keeping one scalar loop
/// each, and the two variants isolating the statistics layout — the
/// columnar kernels fed from per-cluster columns, and the scalar loops
/// fed from the arena.
fn variant_configs(config: &IndexConfig) -> Vec<(&'static str, IndexConfig)> {
    vec![
        (
            "columnar+zones",
            IndexConfig {
                scan_mode: ScanMode::Columnar,
                candidate_scan: ScanMode::Columnar,
                zone_maps: true,
                stats_layout: StatsLayout::Arena,
                ..config.clone()
            },
        ),
        (
            "columnar-nozones",
            IndexConfig {
                scan_mode: ScanMode::Columnar,
                candidate_scan: ScanMode::Columnar,
                zone_maps: false,
                stats_layout: StatsLayout::Arena,
                ..config.clone()
            },
        ),
        (
            "columnar-members-scalar-candidates",
            IndexConfig {
                scan_mode: ScanMode::Columnar,
                candidate_scan: ScanMode::ScalarOracle,
                zone_maps: false,
                ..config.clone()
            },
        ),
        (
            "scalar-members-columnar-candidates",
            IndexConfig {
                scan_mode: ScanMode::ScalarOracle,
                candidate_scan: ScanMode::Columnar,
                ..config.clone()
            },
        ),
        (
            "columnar-per-cluster-stats",
            IndexConfig {
                scan_mode: ScanMode::Columnar,
                candidate_scan: ScanMode::Columnar,
                zone_maps: true,
                stats_layout: StatsLayout::PerClusterOracle,
                ..config.clone()
            },
        ),
        (
            "scalar-arena-stats",
            IndexConfig {
                scan_mode: ScanMode::ScalarOracle,
                candidate_scan: ScanMode::ScalarOracle,
                stats_layout: StatsLayout::Arena,
                ..config.clone()
            },
        ),
    ]
}

fn pair(config: IndexConfig) -> (AdaptiveClusterIndex, AdaptiveClusterIndex) {
    let columnar = AdaptiveClusterIndex::new(IndexConfig {
        scan_mode: ScanMode::Columnar,
        ..config.clone()
    })
    .unwrap();
    let oracle = AdaptiveClusterIndex::new(oracle_config(&config)).unwrap();
    (columnar, oracle)
}

fn random_rect(rng: &mut StdRng, dims: usize, grid: u32) -> HyperRect {
    // Snap coordinates to a coarse grid so query edges coincide with
    // object edges constantly — the boundary cases where `<=` vs `<`
    // mistakes would show up.
    let mut lo = Vec::with_capacity(dims);
    let mut hi = Vec::with_capacity(dims);
    for _ in 0..dims {
        let a = rng.gen_range(0..=grid) as f32 / grid as f32;
        let b = rng.gen_range(0..=grid) as f32 / grid as f32;
        lo.push(a.min(b));
        hi.push(a.max(b));
    }
    HyperRect::from_bounds(&lo, &hi).unwrap()
}

fn random_query(rng: &mut StdRng, dims: usize, grid: u32) -> SpatialQuery {
    match rng.gen_range(0..4u32) {
        0 => SpatialQuery::intersection(random_rect(rng, dims, grid)),
        1 => SpatialQuery::containment(random_rect(rng, dims, grid)),
        2 => SpatialQuery::enclosure(random_rect(rng, dims, grid)),
        _ => SpatialQuery::point_enclosing(
            (0..dims)
                .map(|_| rng.gen_range(0..=grid) as f32 / grid as f32)
                .collect(),
        ),
    }
}

/// Drives the oracle and every bitmask/zone-map variant through the
/// same insert + query stream, asserting bit-identical results,
/// metrics, and adaptive state at every step.
fn assert_equivalent(dims: usize, objects: usize, queries: usize, seed: u64) {
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 40; // several reorganizations within the stream
    let mut oracle = AdaptiveClusterIndex::new(oracle_config(&config)).unwrap();
    let mut variants: Vec<(&str, AdaptiveClusterIndex)> = variant_configs(&config)
        .into_iter()
        .map(|(label, cfg)| (label, AdaptiveClusterIndex::new(cfg).unwrap()))
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..objects {
        let rect = random_rect(&mut rng, dims, 8);
        for (_, index) in variants.iter_mut() {
            index.insert(ObjectId(i as u32), rect.clone()).unwrap();
        }
        oracle.insert(ObjectId(i as u32), rect).unwrap();
    }

    for k in 0..queries {
        let q = random_query(&mut rng, dims, 8);
        let b = oracle.execute(&q);
        for (label, index) in variants.iter_mut() {
            let a = index.execute(&q);
            assert_eq!(
                a.matches, b.matches,
                "[{label}] match set/order diverged on query {k}"
            );
            assert_eq!(
                a.metrics.stats, b.metrics.stats,
                "[{label}] AccessStats diverged on query {k}"
            );
            assert_eq!(
                a.metrics.priced_ms, b.metrics.priced_ms,
                "[{label}] priced cost diverged on query {k}"
            );
        }
    }

    // The adaptive state — reorganization decisions included — is
    // bit-identical because every statistic feeding it was.
    oracle.check_invariants().unwrap();
    for (label, index) in &variants {
        assert_eq!(index.reorganizations(), oracle.reorganizations(), "[{label}]");
        assert_eq!(index.total_merges(), oracle.total_merges(), "[{label}]");
        assert_eq!(index.total_splits(), oracle.total_splits(), "[{label}]");
        assert_eq!(index.verify_fraction(), oracle.verify_fraction(), "[{label}]");
        assert_eq!(index.snapshots(), oracle.snapshots(), "[{label}]");
        index.check_invariants().unwrap();
    }
}

#[test]
fn columnar_equals_oracle_low_dims() {
    assert_equivalent(2, 800, 260, 0xC01);
}

#[test]
fn columnar_equals_oracle_mid_dims() {
    assert_equivalent(5, 700, 220, 0xC05);
}

#[test]
fn columnar_equals_oracle_high_dims() {
    assert_equivalent(8, 600, 200, 0xC08);
}

#[test]
fn recorded_stats_deltas_are_identical() {
    let dims = 4;
    let (mut columnar, mut oracle) = pair(IndexConfig::memory(dims));
    let mut rng = StdRng::seed_from_u64(0xDE17A);
    for i in 0..500u32 {
        let rect = random_rect(&mut rng, dims, 8);
        columnar.insert(ObjectId(i), rect.clone()).unwrap();
        oracle.insert(ObjectId(i), rect).unwrap();
    }
    // Shape both indexes identically first (same stream, reorgs included).
    for _ in 0..150 {
        let q = random_query(&mut rng, dims, 8);
        columnar.execute(&q);
        oracle.execute(&q);
    }
    // Freshly record the same queries on both: the deltas must be equal
    // field for field (StatsDelta: PartialEq).
    let mut delta_c = StatsDelta::new();
    let mut delta_o = StatsDelta::new();
    let mut scratch = QueryScratch::new();
    for _ in 0..40 {
        let q = random_query(&mut rng, dims, 8);
        let mc = columnar.query_recorded_with(&q, &mut delta_c, &mut scratch);
        let matches_c = scratch.matches().to_vec();
        let ro = oracle.query_recorded(&q, &mut delta_o);
        assert_eq!(matches_c, ro.matches);
        assert_eq!(mc.stats, ro.metrics.stats);
    }
    assert_eq!(delta_c, delta_o, "recorded StatsDelta diverged");
    assert_eq!(delta_c.queries(), 40);
}

#[test]
fn read_only_paths_agree_with_execute() {
    let dims = 3;
    let (mut columnar, _) = pair(IndexConfig::memory(dims));
    let mut rng = StdRng::seed_from_u64(0x0A11);
    for i in 0..400u32 {
        let rect = random_rect(&mut rng, dims, 8);
        columnar.insert(ObjectId(i), rect).unwrap();
    }
    for _ in 0..120 {
        columnar.execute(&random_query(&mut rng, dims, 8));
    }
    let mut scratch = QueryScratch::new();
    for _ in 0..30 {
        let q = random_query(&mut rng, dims, 8);
        let read_only = columnar.query(&q);
        let metrics = columnar.query_with(&q, &mut scratch);
        assert_eq!(read_only.matches, scratch.matches());
        assert_eq!(read_only.metrics.stats, metrics.stats);
        let executed = columnar.execute(&q);
        assert_eq!(executed.matches, read_only.matches);
        assert_eq!(executed.metrics.stats, read_only.metrics.stats);
    }
}

#[test]
fn boundary_coincident_edges_agree() {
    // Objects whose edges coincide exactly with the query window edges
    // in every combination, including degenerate (zero-width) intervals.
    let dims = 2;
    let (mut columnar, mut oracle) = pair(IndexConfig::memory(dims));
    let coords = [0.0f32, 0.25, 0.5, 0.75, 1.0];
    let mut id = 0u32;
    for &a in &coords {
        for &b in &coords {
            if b < a {
                continue;
            }
            for &c in &coords {
                for &d in &coords {
                    if d < c {
                        continue;
                    }
                    let rect = HyperRect::from_bounds(&[a, c], &[b, d]).unwrap();
                    columnar.insert(ObjectId(id), rect.clone()).unwrap();
                    oracle.insert(ObjectId(id), rect).unwrap();
                    id += 1;
                }
            }
        }
    }
    let window = HyperRect::from_bounds(&[0.25, 0.25], &[0.75, 0.75]).unwrap();
    let queries = [
        SpatialQuery::intersection(window.clone()),
        SpatialQuery::containment(window.clone()),
        SpatialQuery::enclosure(window),
        SpatialQuery::point_enclosing(vec![0.25, 0.75]),
        SpatialQuery::point_enclosing(vec![0.0, 1.0]),
    ];
    for q in &queries {
        let a = columnar.execute(q);
        let b = oracle.execute(q);
        assert_eq!(a.matches, b.matches);
        assert_eq!(a.metrics.stats, b.metrics.stats);
        assert!(!a.matches.is_empty(), "boundary query should match something");
    }
}

proptest! {
    /// Random workloads in 1–8 dimensions, all query kinds, with
    /// boundary-coincident edges (grid-snapped coordinates): executing
    /// the same stream under a random bitmask/zone-map/stats-layout
    /// variant and the scalar oracle leaves identical matches,
    /// `AccessStats`, recorded `StatsDelta`s and clustering state.
    #[test]
    fn prop_columnar_equals_oracle(
        dims in 1usize..=8,
        n_objects in 1usize..140,
        n_queries in 1usize..40,
        seed in 0u64..1_000_000,
        variant in 0usize..6,
    ) {
        let mut config = IndexConfig::memory(dims);
        config.reorg_period = 25;
        let variant_cfg = variant_configs(&config).swap_remove(variant).1;
        let mut columnar = AdaptiveClusterIndex::new(variant_cfg).unwrap();
        let mut oracle = AdaptiveClusterIndex::new(oracle_config(&config)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n_objects {
            let rect = random_rect(&mut rng, dims, 6);
            columnar.insert(ObjectId(i as u32), rect.clone()).unwrap();
            oracle.insert(ObjectId(i as u32), rect).unwrap();
        }
        for _ in 0..n_queries {
            let q = random_query(&mut rng, dims, 6);
            // Record the query read-only on both indexes first: the
            // freshly recorded deltas must be equal field for field.
            // (Fresh deltas per query, so an `execute`-triggered
            // reorganization between queries never strands an epoch.)
            let mut delta_c = StatsDelta::new();
            let mut delta_o = StatsDelta::new();
            let ra = columnar.query_recorded(&q, &mut delta_c);
            let rb = oracle.query_recorded(&q, &mut delta_o);
            prop_assert_eq!(ra.matches, rb.matches);
            prop_assert_eq!(delta_c, delta_o);
            let a = columnar.execute(&q);
            let b = oracle.execute(&q);
            prop_assert_eq!(&a.matches, &b.matches);
            prop_assert_eq!(a.metrics.stats, b.metrics.stats);
        }
        prop_assert_eq!(columnar.reorganizations(), oracle.reorganizations());
        prop_assert_eq!(columnar.snapshots(), oracle.snapshots());
    }
}
