//! Sort-Tile-Recursive (STR) bulk loading for the R*-tree.
//!
//! The paper builds its R*-tree by repeated insertion (§7.1), which this
//! crate reproduces faithfully — but at the paper's full 2,000,000-object
//! scale that takes a while. STR packing (Leutenegger et al., ICDE 1997)
//! builds an equivalent-quality tree in `O(n log n)`: sort by the center
//! of one dimension, cut into vertical slabs, recurse inside each slab on
//! the remaining dimensions, pack full pages bottom-up.

use acx_geom::Scalar;

/// Balanced partition of `n` items into `parts` chunks whose sizes differ
/// by at most one. Returns the chunk boundaries (exclusive ends).
fn balanced_bounds(n: usize, parts: usize) -> Vec<usize> {
    debug_assert!(parts >= 1 && parts <= n);
    let base = n / parts;
    let extra = n % parts;
    let mut bounds = Vec::with_capacity(parts);
    let mut at = 0;
    for k in 0..parts {
        at += base + usize::from(k < extra);
        bounds.push(at);
    }
    bounds
}

/// Packs entries (flat MBBs) into groups of at most `cap`, STR-style.
/// Returns groups of entry indices; every group except possibly across
/// the balanced remainder has near-equal size, and no group is smaller
/// than `⌊n/parts⌋ ≥ cap/2` when more than one group is produced.
pub(crate) fn str_group(
    mbbs: &[Scalar],
    indices: Vec<usize>,
    width: usize,
    cap: usize,
) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    str_recurse(mbbs, indices, width, 0, cap, &mut out);
    out
}

fn center(mbbs: &[Scalar], idx: usize, width: usize, dim: usize) -> Scalar {
    let e = &mbbs[idx * width..(idx + 1) * width];
    0.5 * (e[2 * dim] + e[2 * dim + 1])
}

fn str_recurse(
    mbbs: &[Scalar],
    mut indices: Vec<usize>,
    width: usize,
    dim: usize,
    cap: usize,
    out: &mut Vec<Vec<usize>>,
) {
    let n = indices.len();
    let pages = n.div_ceil(cap);
    let dims = width / 2;
    if pages <= 1 {
        out.push(indices);
        return;
    }
    indices.sort_by(|&a, &b| {
        center(mbbs, a, width, dim)
            .partial_cmp(&center(mbbs, b, width, dim))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    if dim + 1 >= dims {
        // Last dimension: emit balanced runs directly.
        let bounds = balanced_bounds(n, pages);
        let mut start = 0;
        for end in bounds {
            out.push(indices[start..end].to_vec());
            start = end;
        }
        return;
    }
    // Cut into ⌈pages^(1/remaining_dims)⌉ slabs along this dimension.
    let remaining = (dims - dim) as f64;
    let slabs = ((pages as f64).powf(1.0 / remaining).ceil() as usize)
        .clamp(1, pages)
        .min(n);
    if slabs <= 1 {
        let bounds = balanced_bounds(n, pages);
        let mut start = 0;
        for end in bounds {
            out.push(indices[start..end].to_vec());
            start = end;
        }
        return;
    }
    let bounds = balanced_bounds(n, slabs);
    let mut start = 0;
    for end in bounds {
        str_recurse(mbbs, indices[start..end].to_vec(), width, dim + 1, cap, out);
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_bounds_distribute_remainder() {
        assert_eq!(balanced_bounds(10, 3), vec![4, 7, 10]);
        assert_eq!(balanced_bounds(9, 3), vec![3, 6, 9]);
        assert_eq!(balanced_bounds(5, 1), vec![5]);
    }

    fn grid_mbbs(n: usize) -> Vec<Scalar> {
        // n points on a diagonal-ish 2-d grid.
        let mut mbbs = Vec::with_capacity(n * 4);
        for k in 0..n {
            let x = (k % 17) as f32 / 17.0;
            let y = (k / 17) as f32 / ((n / 17 + 1) as f32);
            mbbs.extend_from_slice(&[x, x + 0.01, y, y + 0.01]);
        }
        mbbs
    }

    #[test]
    fn groups_cover_all_indices_without_overlap() {
        let n = 1000;
        let mbbs = grid_mbbs(n);
        let groups = str_group(&mbbs, (0..n).collect(), 4, 48);
        let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn group_sizes_respect_capacity_and_min_fill() {
        let n = 1000;
        let cap = 48;
        let mbbs = grid_mbbs(n);
        let groups = str_group(&mbbs, (0..n).collect(), 4, cap);
        for g in &groups {
            assert!(g.len() <= cap, "group of {} exceeds cap", g.len());
            // Balanced partitioning keeps every group at least half full.
            assert!(g.len() >= cap / 2, "group of {} below cap/2", g.len());
        }
    }

    #[test]
    fn single_group_when_everything_fits() {
        let mbbs = grid_mbbs(10);
        let groups = str_group(&mbbs, (0..10).collect(), 4, 64);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 10);
    }

    #[test]
    fn groups_are_spatially_coherent() {
        // STR should keep each group's MBB much smaller than the domain.
        let n = 2000;
        let mbbs = grid_mbbs(n);
        let groups = str_group(&mbbs, (0..n).collect(), 4, 50);
        let mut total_area = 0.0f64;
        for g in &groups {
            let mut lo = [1.0f32; 2];
            let mut hi = [0.0f32; 2];
            for &k in g {
                let e = &mbbs[k * 4..k * 4 + 4];
                lo[0] = lo[0].min(e[0]);
                hi[0] = hi[0].max(e[1]);
                lo[1] = lo[1].min(e[2]);
                hi[1] = hi[1].max(e[3]);
            }
            total_area += ((hi[0] - lo[0]) * (hi[1] - lo[1])) as f64;
        }
        // 40 groups tiling the unit square should total far less area
        // than 40 random groups (which would each span ~the whole domain).
        assert!(
            total_area < 0.25 * groups.len() as f64,
            "groups not spatially coherent: total area {total_area:.2} over {} groups",
            groups.len()
        );
    }
}
