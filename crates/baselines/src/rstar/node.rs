//! R*-tree nodes and flat MBB arithmetic.
//!
//! Entries are stored as flat `[lo0, hi0, lo1, hi1, …]` minimum bounding
//! boxes parallel to a pointer array, mirroring the paper's page layout
//! (`2·Nd` 4-byte reals plus a 4-byte pointer per entry).

use acx_geom::Scalar;

/// One R*-tree node. `level == 0` marks leaves, whose pointers are object
/// identifiers; internal pointers are node indices.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub level: u16,
    /// Flat entry MBBs, `2·dims` scalars per entry.
    pub mbbs: Vec<Scalar>,
    /// Child node index (internal) or object id (leaf), parallel to `mbbs`.
    pub ptrs: Vec<u32>,
}

impl Node {
    pub fn new(level: u16, dims: usize, capacity: usize) -> Self {
        Self {
            level,
            mbbs: Vec::with_capacity(capacity * 2 * dims),
            ptrs: Vec::with_capacity(capacity),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.ptrs.len()
    }

    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    #[inline]
    pub fn entry(&self, k: usize, width: usize) -> &[Scalar] {
        &self.mbbs[k * width..(k + 1) * width]
    }

    pub fn push(&mut self, mbb: &[Scalar], ptr: u32) {
        self.mbbs.extend_from_slice(mbb);
        self.ptrs.push(ptr);
    }

    /// Removes entry `k`, swapping in the last entry. Returns its pointer.
    pub fn swap_remove(&mut self, k: usize, width: usize) -> u32 {
        let ptr = self.ptrs.swap_remove(k);
        let last = self.ptrs.len();
        if k < last {
            let (from, to) = (last * width, k * width);
            for i in 0..width {
                self.mbbs[to + i] = self.mbbs[from + i];
            }
        }
        self.mbbs.truncate(last * width);
        ptr
    }

    /// Position of the entry pointing at `ptr`.
    pub fn position_of(&self, ptr: u32) -> Option<usize> {
        self.ptrs.iter().position(|&p| p == ptr)
    }

    /// The node's own MBB: the union of all entry MBBs.
    pub fn mbb(&self, width: usize) -> Vec<Scalar> {
        debug_assert!(!self.ptrs.is_empty());
        let mut acc = self.mbbs[..width].to_vec();
        for k in 1..self.len() {
            union_into(&mut acc, self.entry(k, width));
        }
        acc
    }

    /// Replaces the MBB of entry `k`.
    pub fn set_entry_mbb(&mut self, k: usize, mbb: &[Scalar], width: usize) {
        self.mbbs[k * width..(k + 1) * width].copy_from_slice(mbb);
    }
}

/// Grows `acc` to cover `mbb` (both flat `[lo, hi]` interleaved).
#[inline]
pub(crate) fn union_into(acc: &mut [Scalar], mbb: &[Scalar]) {
    debug_assert_eq!(acc.len(), mbb.len());
    for d in (0..acc.len()).step_by(2) {
        if mbb[d] < acc[d] {
            acc[d] = mbb[d];
        }
        if mbb[d + 1] > acc[d + 1] {
            acc[d + 1] = mbb[d + 1];
        }
    }
}

/// Volume of a flat MBB.
#[inline]
pub(crate) fn area(mbb: &[Scalar]) -> f64 {
    let mut a = 1.0f64;
    for d in (0..mbb.len()).step_by(2) {
        a *= (mbb[d + 1] - mbb[d]) as f64;
    }
    a
}

/// Sum of edge lengths of a flat MBB (the R* margin).
#[inline]
pub(crate) fn margin(mbb: &[Scalar]) -> f64 {
    let mut m = 0.0f64;
    for d in (0..mbb.len()).step_by(2) {
        m += (mbb[d + 1] - mbb[d]) as f64;
    }
    m
}

/// Volume of the intersection of two flat MBBs (0 when disjoint).
#[inline]
pub(crate) fn overlap(a: &[Scalar], b: &[Scalar]) -> f64 {
    let mut v = 1.0f64;
    for d in (0..a.len()).step_by(2) {
        let lo = a[d].max(b[d]);
        let hi = a[d + 1].min(b[d + 1]);
        if hi <= lo {
            return 0.0;
        }
        v *= (hi - lo) as f64;
    }
    v
}

/// Area enlargement needed for `mbb` to cover `add`.
#[inline]
pub(crate) fn enlargement(mbb: &[Scalar], add: &[Scalar]) -> f64 {
    let mut enlarged = 1.0f64;
    for d in (0..mbb.len()).step_by(2) {
        enlarged *= (mbb[d + 1].max(add[d + 1]) - mbb[d].min(add[d])) as f64;
    }
    enlarged - area(mbb)
}

/// Squared distance between the centers of two flat MBBs.
#[inline]
pub(crate) fn center_distance_sq(a: &[Scalar], b: &[Scalar]) -> f64 {
    let mut s = 0.0f64;
    for d in (0..a.len()).step_by(2) {
        let ca = 0.5 * (a[d] + a[d + 1]) as f64;
        let cb = 0.5 * (b[d] + b[d + 1]) as f64;
        s += (ca - cb) * (ca - cb);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_into_expands_bounds() {
        let mut acc = vec![0.2, 0.4, 0.2, 0.4];
        union_into(&mut acc, &[0.1, 0.3, 0.3, 0.6]);
        assert_eq!(acc, vec![0.1, 0.4, 0.2, 0.6]);
    }

    #[test]
    fn area_margin_overlap() {
        let a = [0.0, 0.5, 0.0, 0.4];
        assert!((area(&a) - 0.2).abs() < 1e-6);
        assert!((margin(&a) - 0.9).abs() < 1e-6);
        let b = [0.25, 1.0, 0.2, 1.0];
        assert!((overlap(&a, &b) - 0.25 * 0.2).abs() < 1e-6);
        let c = [0.6, 1.0, 0.0, 1.0];
        assert_eq!(overlap(&a, &c), 0.0);
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let a = [0.0, 1.0, 0.0, 1.0];
        assert_eq!(enlargement(&a, &[0.2, 0.4, 0.3, 0.5]), 0.0);
        let e = enlargement(&[0.0, 0.5, 0.0, 0.5], &[0.0, 1.0, 0.0, 0.5]);
        assert!((e - 0.25).abs() < 1e-6);
    }

    #[test]
    fn node_push_swap_remove() {
        let mut n = Node::new(0, 2, 4);
        n.push(&[0.1, 0.2, 0.1, 0.2], 1);
        n.push(&[0.3, 0.4, 0.3, 0.4], 2);
        n.push(&[0.5, 0.6, 0.5, 0.6], 3);
        assert_eq!(n.len(), 3);
        assert_eq!(n.swap_remove(0, 4), 1);
        assert_eq!(n.ptrs, vec![3, 2]);
        assert_eq!(n.entry(0, 4), &[0.5, 0.6, 0.5, 0.6]);
        assert_eq!(n.position_of(2), Some(1));
        assert_eq!(n.position_of(9), None);
    }

    #[test]
    fn node_mbb_covers_entries() {
        let mut n = Node::new(0, 2, 4);
        n.push(&[0.1, 0.2, 0.5, 0.9], 1);
        n.push(&[0.0, 0.4, 0.6, 0.7], 2);
        assert_eq!(n.mbb(4), vec![0.0, 0.4, 0.5, 0.9]);
    }

    #[test]
    fn center_distance() {
        let a = [0.0, 0.2, 0.0, 0.2]; // center (0.1, 0.1)
        let b = [0.2, 0.4, 0.4, 0.6]; // center (0.3, 0.5)
        assert!((center_distance_sq(&a, &b) - (0.04 + 0.16)).abs() < 1e-6);
    }
}
