//! The R* topological split (Beckmann et al. 1990, §4.2) and the
//! forced-reinsert entry selection (§4.3).

use acx_geom::Scalar;

use super::node::{area, center_distance_sq, margin, overlap, union_into};


/// Outcome of [`rstar_split`]: entry indices for the two groups.
pub(crate) struct SplitPlan {
    pub group1: Vec<usize>,
    pub group2: Vec<usize>,
}

/// Chooses the R* split of `count` entries with flat MBBs `mbbs`:
///
/// 1. **ChooseSplitAxis** — for every axis, sort entries by lower then by
///    upper bound and sum the margins of all `(k, count−k)` distributions
///    with `m ≤ k ≤ count−m`; pick the axis with the least total margin.
/// 2. **ChooseSplitIndex** — on that axis, pick the distribution with the
///    least overlap between the two group MBBs, ties broken by least
///    combined area.
pub(crate) fn rstar_split(mbbs: &[Scalar], count: usize, dims: usize, m: usize) -> SplitPlan {
    debug_assert!(count >= 2 * m, "cannot split {count} entries with m={m}");
    let width = 2 * dims;
    let entry = |k: usize| &mbbs[k * width..(k + 1) * width];

    // Pre-sorted index arrays per axis (by lower and by upper bound).
    let mut best_axis = 0usize;
    let mut best_axis_margin = f64::INFINITY;
    let mut axis_sorts: Vec<(Vec<usize>, Vec<usize>)> = Vec::with_capacity(dims);
    for d in 0..dims {
        let mut by_lo: Vec<usize> = (0..count).collect();
        by_lo.sort_by(|&a, &b| {
            entry(a)[2 * d]
                .partial_cmp(&entry(b)[2 * d])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut by_hi: Vec<usize> = (0..count).collect();
        by_hi.sort_by(|&a, &b| {
            entry(a)[2 * d + 1]
                .partial_cmp(&entry(b)[2 * d + 1])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut total_margin = 0.0;
        for order in [&by_lo, &by_hi] {
            let (prefix, suffix) = prefix_suffix_mbbs(mbbs, order, width);
            for k in m..=count - m {
                total_margin += margin(&prefix[(k - 1) * width..k * width])
                    + margin(&suffix[k * width..(k + 1) * width]);
            }
        }
        if total_margin < best_axis_margin {
            best_axis_margin = total_margin;
            best_axis = d;
        }
        axis_sorts.push((by_lo, by_hi));
    }

    let (by_lo, by_hi) = &axis_sorts[best_axis];
    let mut best: Option<(f64, f64, &Vec<usize>, usize)> = None; // (overlap, area, order, k)
    for order in [by_lo, by_hi] {
        let (prefix, suffix) = prefix_suffix_mbbs(mbbs, order, width);
        for k in m..=count - m {
            let bb1 = &prefix[(k - 1) * width..k * width];
            let bb2 = &suffix[k * width..(k + 1) * width];
            let ov = overlap(bb1, bb2);
            let ar = area(bb1) + area(bb2);
            let better = match &best {
                None => true,
                Some((bov, bar, _, _)) => ov < *bov || (ov == *bov && ar < *bar),
            };
            if better {
                best = Some((ov, ar, order, k));
            }
        }
    }
    let (_, _, order, k) = best.expect("at least one distribution exists");
    SplitPlan {
        group1: order[..k].to_vec(),
        group2: order[k..].to_vec(),
    }
}

/// For a given entry order, computes running MBBs of every prefix and
/// every suffix. `prefix[k]` covers `order[0..=k]`, `suffix[k]` covers
/// `order[k..]`.
fn prefix_suffix_mbbs(
    mbbs: &[Scalar],
    order: &[usize],
    width: usize,
) -> (Vec<Scalar>, Vec<Scalar>) {
    let count = order.len();
    let entry = |k: usize| &mbbs[order[k] * width..(order[k] + 1) * width];
    let mut prefix = vec![0.0; count * width];
    let mut suffix = vec![0.0; count * width];
    prefix[..width].copy_from_slice(entry(0));
    for k in 1..count {
        let (done, cur) = prefix.split_at_mut(k * width);
        cur[..width].copy_from_slice(&done[(k - 1) * width..]);
        union_into(&mut cur[..width], entry(k));
    }
    suffix[(count - 1) * width..].copy_from_slice(entry(count - 1));
    for k in (0..count - 1).rev() {
        let (cur, done) = suffix.split_at_mut((k + 1) * width);
        let start = k * width;
        cur[start..].copy_from_slice(&done[..width]);
        let mut tmp = cur[start..].to_vec();
        union_into(&mut tmp, entry(k));
        cur[start..].copy_from_slice(&tmp);
    }
    (prefix, suffix)
}

/// Forced-reinsert selection (R* §4.3): returns the indices of the
/// `p` entries whose centers lie furthest from the node MBB center,
/// ordered **closest first** for re-insertion ("close reinsert").
pub(crate) fn reinsert_selection(
    mbbs: &[Scalar],
    count: usize,
    dims: usize,
    p: usize,
) -> Vec<usize> {
    let width = 2 * dims;
    let entry = |k: usize| &mbbs[k * width..(k + 1) * width];
    let mut node_mbb = entry(0).to_vec();
    for k in 1..count {
        union_into(&mut node_mbb, entry(k));
    }
    let mut by_distance: Vec<(usize, f64)> = (0..count)
        .map(|k| (k, center_distance_sq(entry(k), &node_mbb)))
        .collect();
    // Furthest first.
    by_distance.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut chosen: Vec<usize> = by_distance[..p].iter().map(|&(k, _)| k).collect();
    chosen.reverse(); // closest of the removed set is re-inserted first
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2-d entries forming two well-separated clusters; the split must
    /// recover them.
    #[test]
    fn split_separates_obvious_clusters() {
        let mut mbbs = Vec::new();
        // Four entries near the origin.
        for k in 0..4 {
            let b = 0.02 * k as f32;
            mbbs.extend_from_slice(&[b, b + 0.01, b, b + 0.01]);
        }
        // Four entries near (0.9, 0.9).
        for k in 0..4 {
            let b = 0.9 + 0.02 * k as f32;
            mbbs.extend_from_slice(&[b, b + 0.01, b, b + 0.01]);
        }
        let plan = rstar_split(&mbbs, 8, 2, 2);
        let mut g1 = plan.group1.clone();
        let mut g2 = plan.group2.clone();
        g1.sort_unstable();
        g2.sort_unstable();
        let (low, high) = if g1[0] == 0 { (g1, g2) } else { (g2, g1) };
        assert_eq!(low, vec![0, 1, 2, 3]);
        assert_eq!(high, vec![4, 5, 6, 7]);
    }

    #[test]
    fn split_respects_minimum_fill() {
        // Entries spread along one axis: any valid split keeps ≥ m per side.
        let mut mbbs = Vec::new();
        for k in 0..10 {
            let b = 0.1 * k as f32;
            mbbs.extend_from_slice(&[b, b + 0.05, 0.0, 1.0]);
        }
        let m = 4;
        let plan = rstar_split(&mbbs, 10, 2, m);
        assert!(plan.group1.len() >= m && plan.group2.len() >= m);
        assert_eq!(plan.group1.len() + plan.group2.len(), 10);
        // Groups must partition the indices.
        let mut all: Vec<usize> = plan.group1.iter().chain(&plan.group2).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn split_minimizes_overlap_on_chosen_axis() {
        // Two groups overlapping on axis 0 but clean on axis 1:
        // the split should use axis 1 and produce zero overlap.
        let mut mbbs = Vec::new();
        for k in 0..3 {
            let b = 0.2 * k as f32;
            mbbs.extend_from_slice(&[b, b + 0.5, 0.0, 0.1]);
        }
        for k in 0..3 {
            let b = 0.2 * k as f32;
            mbbs.extend_from_slice(&[b, b + 0.5, 0.8, 0.9]);
        }
        let plan = rstar_split(&mbbs, 6, 2, 2);
        let width = 4;
        let group_mbb = |idx: &[usize]| {
            let mut bb = mbbs[idx[0] * width..idx[0] * width + width].to_vec();
            for &k in &idx[1..] {
                union_into(&mut bb, &mbbs[k * width..(k + 1) * width]);
            }
            bb
        };
        let ov = overlap(&group_mbb(&plan.group1), &group_mbb(&plan.group2));
        assert_eq!(ov, 0.0);
    }

    #[test]
    fn reinsert_picks_furthest_entries() {
        let mut mbbs = Vec::new();
        // Center cluster.
        for _ in 0..6 {
            mbbs.extend_from_slice(&[0.45, 0.55, 0.45, 0.55]);
        }
        // Two outliers.
        mbbs.extend_from_slice(&[0.0, 0.02, 0.0, 0.02]);
        mbbs.extend_from_slice(&[0.98, 1.0, 0.98, 1.0]);
        let chosen = reinsert_selection(&mbbs, 8, 2, 2);
        let mut sorted = chosen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![6, 7], "outliers must be selected");
    }

    #[test]
    fn prefix_suffix_consistency() {
        let mbbs = vec![
            0.0, 0.1, 0.0, 0.1, //
            0.2, 0.3, 0.2, 0.3, //
            0.4, 0.5, 0.4, 0.5,
        ];
        let order = vec![0, 1, 2];
        let (prefix, suffix) = prefix_suffix_mbbs(&mbbs, &order, 4);
        assert_eq!(&prefix[0..4], &[0.0, 0.1, 0.0, 0.1]);
        assert_eq!(&prefix[8..12], &[0.0, 0.5, 0.0, 0.5]);
        assert_eq!(&suffix[0..4], &[0.0, 0.5, 0.0, 0.5]);
        assert_eq!(&suffix[8..12], &[0.4, 0.5, 0.4, 0.5]);
    }
}
