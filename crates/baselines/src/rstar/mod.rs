//! A from-scratch R*-tree (Beckmann, Kriegel, Schneider, Seeger — SIGMOD
//! 1990), the strongest R-tree variant still supporting multidimensional
//! extended objects and the paper's main competitor (§7.1).
//!
//! Faithful to the original algorithm: ChooseSubtree minimizes overlap
//! enlargement at the leaf level and area enlargement above it, overflowing
//! nodes first force-reinsert 30 % of their entries (once per level per
//! insertion), and splits pick the minimum-margin axis then the
//! minimum-overlap distribution. Node fan-out derives from a page size
//! (16 KiB in the paper's evaluation) and the dimensionality.

mod bulk;
mod node;
mod split;

use std::time::Instant;

use acx_geom::scan::{scan_interleaved, ScanScratch};
use acx_geom::{object_size_bytes, HyperRect, ObjectId, Scalar, SpatialQuery, OBJECT_ID_BYTES};
use acx_storage::{
    AccessStats, CostModel, DeviceProfile, QueryMetrics, QueryResult, StorageScenario,
};

use node::{enlargement, overlap, union_into, Node};
use split::{reinsert_selection, rstar_split};

/// Configuration of an [`RStarTree`].
#[derive(Debug, Clone, PartialEq)]
pub struct RStarConfig {
    /// Dimensionality of indexed objects.
    pub dims: usize,
    /// Node page size in bytes (paper §7.1 uses 16 KiB).
    pub page_size: usize,
    /// Minimum node fill as a fraction of the maximum (R* uses 40 %).
    pub min_fill: f64,
    /// Fraction of entries force-reinserted on first overflow (R* uses 30 %).
    pub reinsert_fraction: f64,
    /// Storage scenario priced by the cost model.
    pub scenario: StorageScenario,
    /// Device cost constants.
    pub profile: DeviceProfile,
}

impl RStarConfig {
    /// Memory-scenario configuration with the paper's page size.
    pub fn memory(dims: usize) -> Self {
        Self {
            dims,
            page_size: 16 * 1024,
            min_fill: 0.4,
            reinsert_fraction: 0.3,
            scenario: StorageScenario::Memory,
            profile: DeviceProfile::edbt2004(),
        }
    }

    /// Disk-scenario configuration with the paper's page size.
    pub fn disk(dims: usize) -> Self {
        Self {
            scenario: StorageScenario::Disk,
            ..Self::memory(dims)
        }
    }

    /// Bytes per entry: `2·Nd` 4-byte bounds plus a 4-byte pointer.
    pub fn entry_bytes(&self) -> usize {
        self.dims * 2 * 4 + 4
    }

    /// Maximum entries per node implied by the page size.
    pub fn max_entries(&self) -> usize {
        (self.page_size / self.entry_bytes()).max(4)
    }

    /// Minimum entries per node.
    pub fn min_entries(&self) -> usize {
        (((self.max_entries() as f64) * self.min_fill) as usize).max(2)
    }

    /// Entries force-reinserted on overflow.
    pub fn reinsert_count(&self) -> usize {
        (((self.max_entries() as f64) * self.reinsert_fraction) as usize).max(1)
    }

    /// The cost model implied by this configuration.
    pub fn cost_model(&self) -> CostModel {
        CostModel::new(self.profile, self.scenario, object_size_bytes(self.dims))
    }
}

/// The R*-tree baseline.
///
/// ```
/// use acx_baselines::{RStarConfig, RStarTree};
/// use acx_geom::{HyperRect, ObjectId, SpatialQuery};
///
/// let mut tree = RStarTree::new(RStarConfig::memory(2));
/// tree.insert(ObjectId(1), &HyperRect::from_bounds(&[0.1, 0.1], &[0.2, 0.2]).unwrap());
/// let hit = tree.execute(&SpatialQuery::point_enclosing(vec![0.15, 0.15]));
/// assert_eq!(hit.matches, vec![ObjectId(1)]);
/// ```
pub struct RStarTree {
    config: RStarConfig,
    model: CostModel,
    nodes: Vec<Option<Node>>,
    free: Vec<u32>,
    root: u32,
    len: usize,
    max_entries: usize,
    min_entries: usize,
}

impl RStarTree {
    /// Creates an empty tree.
    pub fn new(config: RStarConfig) -> Self {
        assert!(config.dims > 0, "dims must be positive");
        let max_entries = config.max_entries();
        let min_entries = config.min_entries();
        assert!(min_entries * 2 <= max_entries + 1, "min fill too high");
        let model = config.cost_model();
        let root = Node::new(0, config.dims, max_entries + 1);
        Self {
            config,
            model,
            nodes: vec![Some(root)],
            free: Vec::new(),
            root: 0,
            len: 0,
            max_entries,
            min_entries,
        }
    }

    /// The tree configuration.
    pub fn config(&self) -> &RStarConfig {
        &self.config
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated tree nodes (the paper's "number of nodes").
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Height of the tree (a single leaf root has height 1).
    pub fn height(&self) -> usize {
        self.node(self.root).level as usize + 1
    }

    /// The cost model pricing this tree.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    #[inline]
    fn width(&self) -> usize {
        2 * self.config.dims
    }

    fn node(&self, idx: u32) -> &Node {
        self.nodes[idx as usize].as_ref().expect("node is live")
    }

    fn node_mut(&mut self, idx: u32) -> &mut Node {
        self.nodes[idx as usize].as_mut().expect("node is live")
    }

    fn alloc(&mut self, node: Node) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = Some(node);
            idx
        } else {
            self.nodes.push(Some(node));
            (self.nodes.len() - 1) as u32
        }
    }

    fn dealloc(&mut self, idx: u32) {
        self.nodes[idx as usize] = None;
        self.free.push(idx);
    }

    /// Builds a tree by Sort-Tile-Recursive bulk loading.
    ///
    /// Produces the same query semantics as repeated [`RStarTree::insert`]
    /// in `O(n log n)` — useful for the paper's full-scale (2,000,000
    /// object) experiments. The paper itself builds by insertion; the
    /// experiment binaries do too, so bulk loading is an opt-in extension.
    ///
    /// # Panics
    ///
    /// Panics if any rectangle's dimensionality differs from the config's.
    pub fn bulk_load(config: RStarConfig, items: &[(ObjectId, HyperRect)]) -> Self {
        let mut tree = Self::new(config);
        if items.is_empty() {
            return tree;
        }
        let dims = tree.config.dims;
        let width = 2 * dims;
        // Pack to ~70 % page fill (the utilization the paper assumes),
        // raised to 2·m so that even the smallest balanced group
        // (≥ cap/2) satisfies the minimum-fill invariant.
        let cap = ((tree.max_entries as f64 * 0.7) as usize)
            .max(2 * tree.min_entries)
            .min(tree.max_entries);
        let original_root = tree.root;

        // Level 0: flat object MBBs.
        let mut mbbs: Vec<Scalar> = Vec::with_capacity(items.len() * width);
        let mut ptrs: Vec<u32> = Vec::with_capacity(items.len());
        for (id, rect) in items {
            assert_eq!(rect.dims(), dims, "dimensionality mismatch");
            rect.write_flat(&mut mbbs);
            ptrs.push(id.raw());
        }
        tree.len = items.len();

        let mut level = 0u16;
        loop {
            let count = ptrs.len();
            if count <= tree.max_entries {
                let root = if level == 0 {
                    tree.root // reuse the pre-allocated empty leaf root
                } else {
                    tree.alloc(Node::new(level, dims, tree.max_entries + 1))
                };
                for k in 0..count {
                    let mbb = mbbs[k * width..(k + 1) * width].to_vec();
                    tree.node_mut(root).push(&mbb, ptrs[k]);
                }
                tree.node_mut(root).level = level;
                tree.root = root;
                break;
            }
            let groups = bulk::str_group(&mbbs, (0..count).collect(), width, cap);
            let mut next_mbbs = Vec::with_capacity(groups.len() * width);
            let mut next_ptrs = Vec::with_capacity(groups.len());
            for group in groups {
                let mut node = Node::new(level, dims, tree.max_entries + 1);
                for &k in &group {
                    node.push(&mbbs[k * width..(k + 1) * width], ptrs[k]);
                }
                next_mbbs.extend_from_slice(&node.mbb(width));
                next_ptrs.push(tree.alloc(node));
            }
            mbbs = next_mbbs;
            ptrs = next_ptrs;
            level += 1;
        }
        if tree.root != original_root {
            tree.dealloc(original_root);
        }
        tree
    }

    /// Inserts an object. Object ids are caller-managed; inserting the
    /// same id twice stores two entries.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle dimensionality differs from the tree's.
    pub fn insert(&mut self, id: ObjectId, rect: &HyperRect) {
        assert_eq!(rect.dims(), self.config.dims, "dimensionality mismatch");
        let mbb = rect.to_flat();
        let mut reinserted = vec![false; self.node(self.root).level as usize + 1];
        self.insert_entry(&mbb, id.raw(), 0, &mut reinserted);
        self.len += 1;
    }

    /// Inserts an entry (object or orphaned subtree) at `level`.
    fn insert_entry(&mut self, mbb: &[Scalar], ptr: u32, level: u16, reinserted: &mut Vec<bool>) {
        let path = self.choose_path(mbb, level);
        let target = *path.last().expect("path reaches target level");
        self.node_mut(target).push(mbb, ptr);
        self.update_path_mbbs(&path);

        // Resolve overflow bottom-up.
        let mut depth = path.len() - 1;
        loop {
            let n = path[depth];
            if self.node(n).len() <= self.max_entries {
                break;
            }
            let lvl = self.node(n).level as usize;
            if n != self.root && !reinserted[lvl] {
                reinserted[lvl] = true;
                self.forced_reinsert(n, &path[..=depth], reinserted);
                break;
            }
            let (old_mbb, new_mbb, new_node) = self.split_node(n);
            if n == self.root {
                let new_level = self.node(n).level + 1;
                let mut new_root = Node::new(new_level, self.config.dims, self.max_entries + 1);
                new_root.push(&old_mbb, n);
                new_root.push(&new_mbb, new_node);
                self.root = self.alloc(new_root);
                break;
            }
            let parent = path[depth - 1];
            let width = self.width();
            let pos = self
                .node(parent)
                .position_of(n)
                .expect("parent links child");
            self.node_mut(parent).set_entry_mbb(pos, &old_mbb, width);
            self.node_mut(parent).push(&new_mbb, new_node);
            depth -= 1;
        }
    }

    /// Path from the root down to the chosen node at `level`, applying
    /// the R* ChooseSubtree criteria.
    fn choose_path(&self, mbb: &[Scalar], level: u16) -> Vec<u32> {
        let width = self.width();
        let mut path = vec![self.root];
        let mut current = self.root;
        while self.node(current).level > level {
            let node = self.node(current);
            let choosing_leaves = node.level == 1;
            let chosen = if choosing_leaves && level == 0 {
                self.choose_by_overlap(node, mbb, width)
            } else {
                self.choose_by_area(node, mbb, width)
            };
            current = node.ptrs[chosen];
            path.push(current);
        }
        path
    }

    /// Leaf-level criterion: minimum overlap enlargement, ties broken by
    /// area enlargement then area. As in the original paper, only the
    /// 32 entries with least area enlargement are examined when the node
    /// is large.
    fn choose_by_overlap(&self, node: &Node, mbb: &[Scalar], width: usize) -> usize {
        let mut order: Vec<usize> = (0..node.len()).collect();
        if node.len() > 32 {
            order.sort_by(|&a, &b| {
                enlargement(node.entry(a, width), mbb)
                    .partial_cmp(&enlargement(node.entry(b, width), mbb))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            order.truncate(32);
        }
        let mut best = order[0];
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for &k in &order {
            let entry = node.entry(k, width);
            let mut enlarged = entry.to_vec();
            union_into(&mut enlarged, mbb);
            let mut overlap_before = 0.0;
            let mut overlap_after = 0.0;
            for other in 0..node.len() {
                if other == k {
                    continue;
                }
                let o = node.entry(other, width);
                overlap_before += overlap(entry, o);
                overlap_after += overlap(&enlarged, o);
            }
            let key = (
                overlap_after - overlap_before,
                enlargement(entry, mbb),
                node::area(entry),
            );
            if key < best_key {
                best_key = key;
                best = k;
            }
        }
        best
    }

    /// Internal-level criterion: minimum area enlargement, ties broken by
    /// area.
    fn choose_by_area(&self, node: &Node, mbb: &[Scalar], width: usize) -> usize {
        let mut best = 0;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for k in 0..node.len() {
            let entry = node.entry(k, width);
            let key = (enlargement(entry, mbb), node::area(entry));
            if key < best_key {
                best_key = key;
                best = k;
            }
        }
        best
    }

    /// Recomputes ancestor entry MBBs along `path` (deepest last).
    fn update_path_mbbs(&mut self, path: &[u32]) {
        let width = self.width();
        for w in (1..path.len()).rev() {
            let child = path[w];
            let parent = path[w - 1];
            let child_mbb = self.node(child).mbb(width);
            let pos = self
                .node(parent)
                .position_of(child)
                .expect("parent links child");
            self.node_mut(parent).set_entry_mbb(pos, &child_mbb, width);
        }
    }

    /// Forced reinsertion (R* OverflowTreatment): removes the 30 % of
    /// entries furthest from the node center and reinserts them.
    fn forced_reinsert(&mut self, n: u32, path: &[u32], reinserted: &mut Vec<bool>) {
        let width = self.width();
        let p = self.config.reinsert_count();
        let (level, removed) = {
            let node = self.node_mut(n);
            let count = node.len();
            let chosen = reinsert_selection(&node.mbbs, count, width / 2, p);
            // Capture the entries in re-insertion ("closest first") order
            // before removal invalidates the indices.
            let removed: Vec<(Vec<Scalar>, u32)> = chosen
                .iter()
                .map(|&k| (node.entry(k, width).to_vec(), node.ptrs[k]))
                .collect();
            let mut by_desc = chosen;
            by_desc.sort_unstable_by(|a, b| b.cmp(a));
            for k in by_desc {
                node.swap_remove(k, width);
            }
            (node.level, removed)
        };
        self.update_path_mbbs(path);
        for (mbb, ptr) in removed {
            self.insert_entry(&mbb, ptr, level, reinserted);
        }
    }

    /// Splits node `n`; returns (old node MBB, new node MBB, new node id).
    fn split_node(&mut self, n: u32) -> (Vec<Scalar>, Vec<Scalar>, u32) {
        let width = self.width();
        let dims = self.config.dims;
        let (level, mbbs, ptrs) = {
            let node = self.node_mut(n);
            (
                node.level,
                std::mem::take(&mut node.mbbs),
                std::mem::take(&mut node.ptrs),
            )
        };
        let plan = rstar_split(&mbbs, ptrs.len(), dims, self.min_entries);
        let mut new_node = Node::new(level, dims, self.max_entries + 1);
        {
            let node = self.node_mut(n);
            for &k in &plan.group1 {
                node.push(&mbbs[k * width..(k + 1) * width], ptrs[k]);
            }
        }
        for &k in &plan.group2 {
            new_node.push(&mbbs[k * width..(k + 1) * width], ptrs[k]);
        }
        let old_mbb = self.node(n).mbb(width);
        let new_mbb = new_node.mbb(width);
        let new_idx = self.alloc(new_node);
        (old_mbb, new_mbb, new_idx)
    }

    /// Removes one entry with the given id and rectangle. Returns whether
    /// an entry was found and removed.
    pub fn remove(&mut self, id: ObjectId, rect: &HyperRect) -> bool {
        assert_eq!(rect.dims(), self.config.dims, "dimensionality mismatch");
        let width = self.width();
        let target = rect.to_flat();
        // Find the leaf containing the entry (DFS over containing MBBs).
        let Some(path) = self.find_leaf(&target, id.raw()) else {
            return false;
        };
        let leaf = *path.last().expect("path ends at leaf");
        let pos = {
            let node = self.node(leaf);
            (0..node.len())
                .find(|&k| node.ptrs[k] == id.raw() && node.entry(k, width) == &target[..])
                .expect("find_leaf located the entry")
        };
        self.node_mut(leaf).swap_remove(pos, width);
        self.len -= 1;
        self.condense(path);
        true
    }

    fn find_leaf(&self, target: &[Scalar], id: u32) -> Option<Vec<u32>> {
        let width = self.width();
        let mut stack: Vec<Vec<u32>> = vec![vec![self.root]];
        while let Some(path) = stack.pop() {
            let n = *path.last().expect("non-empty path");
            let node = self.node(n);
            if node.is_leaf() {
                for k in 0..node.len() {
                    if node.ptrs[k] == id && node.entry(k, width) == target {
                        return Some(path);
                    }
                }
                continue;
            }
            for k in 0..node.len() {
                let e = node.entry(k, width);
                let contains = (0..width)
                    .step_by(2)
                    .all(|d| e[d] <= target[d] && e[d + 1] >= target[d + 1]);
                if contains {
                    let mut next = path.clone();
                    next.push(node.ptrs[k]);
                    stack.push(next);
                }
            }
        }
        None
    }

    /// CondenseTree: dissolve underfull nodes along the path and reinsert
    /// their orphaned entries at the correct level.
    fn condense(&mut self, path: Vec<u32>) {
        let width = self.width();
        let mut orphans: Vec<(u16, Vec<Scalar>, u32)> = Vec::new();
        for depth in (1..path.len()).rev() {
            let n = path[depth];
            let parent = path[depth - 1];
            if self.node(n).len() < self.min_entries {
                // Dissolve: remove from parent, stash entries.
                let pos = self
                    .node(parent)
                    .position_of(n)
                    .expect("parent links child");
                self.node_mut(parent).swap_remove(pos, width);
                let node = self.nodes[n as usize].take().expect("node is live");
                self.free.push(n);
                for k in 0..node.ptrs.len() {
                    orphans.push((
                        node.level,
                        node.mbbs[k * width..(k + 1) * width].to_vec(),
                        node.ptrs[k],
                    ));
                }
            } else {
                let child_mbb = self.node(n).mbb(width);
                let pos = self
                    .node(parent)
                    .position_of(n)
                    .expect("parent links child");
                self.node_mut(parent).set_entry_mbb(pos, &child_mbb, width);
            }
        }
        // Reinsert orphans, deepest levels first so subtrees rejoin at
        // their original height.
        orphans.sort_by_key(|(level, _, _)| *level);
        for (level, mbb, ptr) in orphans {
            let mut reinserted = vec![false; self.node(self.root).level as usize + 1];
            self.insert_entry(&mbb, ptr, level, &mut reinserted);
        }
        // Shrink the root while it is an internal node with one child.
        while !self.node(self.root).is_leaf() && self.node(self.root).len() == 1 {
            let old_root = self.root;
            self.root = self.node(old_root).ptrs[0];
            self.dealloc(old_root);
        }
    }

    /// Executes a spatial selection, pruning subtrees by MBB.
    ///
    /// # Panics
    ///
    /// Panics if the query dimensionality differs from the tree's.
    pub fn execute(&self, query: &SpatialQuery) -> QueryResult {
        let mut scratch = ScanScratch::new();
        self.execute_with(query, &mut scratch)
    }

    /// [`RStarTree::execute`] through a reusable kernel scratch.
    ///
    /// Leaf entries are verified by the same columnar batch kernel as the
    /// adaptive index and the sequential scan
    /// ([`acx_geom::scan::scan_interleaved`]): each visited leaf page is
    /// scanned one dimension at a time over a survivors mask, gathering
    /// dimension tiles lazily from the row-major page — a block of
    /// entries rejected in its first dimensions never pays for the
    /// remaining ones, so the early-exit economics of the previous
    /// per-entry loop are preserved. Match sets and access counters are
    /// bit-identical to per-entry verification. Internal nodes keep the
    /// scalar MBB pruning checks (those are signature checks, not object
    /// verification).
    ///
    /// # Panics
    ///
    /// Panics if the query dimensionality differs from the tree's.
    pub fn execute_with(&self, query: &SpatialQuery, scratch: &mut ScanScratch) -> QueryResult {
        assert_eq!(query.dims(), self.config.dims, "dimensionality mismatch");
        let started = Instant::now();
        let width = self.width();
        // Node-pruning predicate: a subtree may contain a match iff its
        // MBB …intersects the window (intersection/containment queries)
        // or contains the window (enclosure/point queries).
        let prune_query = match query {
            SpatialQuery::Intersection(w) | SpatialQuery::Containment(w) => {
                SpatialQuery::Intersection(w.clone())
            }
            SpatialQuery::Enclosure(w) => SpatialQuery::Enclosure(w.clone()),
            SpatialQuery::PointEnclosing(p) => SpatialQuery::PointEnclosing(p.clone()),
        };
        let mut stats = AccessStats::new();
        let mut matches = Vec::new();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = self.node(n);
            stats.clusters_explored += 1;
            stats.seeks += 1;
            stats.transfer_bytes += self.config.page_size as u64;
            if node.is_leaf() {
                let n = node.len();
                let outcome = scan_interleaved(query, &node.mbbs[..n * width], scratch);
                stats.objects_verified += n as u64;
                stats.verified_bytes += outcome.verified_bytes();
                for &k in scratch.matches() {
                    matches.push(ObjectId(node.ptrs[k as usize]));
                }
            } else {
                for k in 0..node.len() {
                    let outcome = prune_query.matches_flat(node.entry(k, width));
                    stats.signature_checks += 1;
                    stats.verified_bytes +=
                        OBJECT_ID_BYTES as u64 + 8 * outcome.dims_checked as u64;
                    if outcome.matched {
                        stack.push(node.ptrs[k]);
                    }
                }
            }
        }
        let priced_ms = self.model.price(&stats);
        QueryResult {
            matches,
            metrics: QueryMetrics {
                stats,
                priced_ms,
                wall: started.elapsed(),
            },
        }
    }

    /// Verifies R*-tree structural invariants; used by tests.
    ///
    /// Checks fill bounds, uniform leaf level, MBB coverage (every entry
    /// MBB equals the union of its child's entries), and that the stored
    /// object count matches the leaf entry count.
    pub fn check_invariants(&self) -> Result<(), String> {
        let width = self.width();
        let mut leaf_entries = 0usize;
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = self.node(n);
            if n != self.root && node.len() < self.min_entries {
                return Err(format!(
                    "node {n} underfull: {} < {}",
                    node.len(),
                    self.min_entries
                ));
            }
            if node.len() > self.max_entries {
                return Err(format!(
                    "node {n} overfull: {} > {}",
                    node.len(),
                    self.max_entries
                ));
            }
            if node.is_leaf() {
                leaf_entries += node.len();
                continue;
            }
            for k in 0..node.len() {
                let child = node.ptrs[k];
                let child_node = self
                    .nodes
                    .get(child as usize)
                    .and_then(|c| c.as_ref())
                    .ok_or_else(|| format!("node {n} has dangling child {child}"))?;
                if child_node.level + 1 != node.level {
                    return Err(format!(
                        "child {child} level {} under parent level {}",
                        child_node.level, node.level
                    ));
                }
                let expected = child_node.mbb(width);
                if node.entry(k, width) != &expected[..] {
                    return Err(format!("node {n} entry {k} MBB does not match child union"));
                }
                stack.push(child);
            }
        }
        if leaf_entries != self.len {
            return Err(format!(
                "{} leaf entries but len() = {}",
                leaf_entries, self.len
            ));
        }
        Ok(())
    }
}
