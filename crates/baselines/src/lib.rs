//! Competitor access methods from the paper's evaluation (§7):
//! **Sequential Scan** and the **R*-tree**.
//!
//! Both fill the same [`acx_storage::AccessStats`] counters as the
//! adaptive clustering index, so the experiment harness prices all three
//! methods with one cost model per storage scenario. They also verify
//! objects through the same columnar batch kernel
//! ([`acx_geom::scan`]), keeping the throughput comparison
//! apples-to-apples at the verification level, and expose the shared
//! [`BatchExecute`] batch API so it stays apples-to-apples at the API
//! level too.
//!
//! * [`SeqScan`] — stores all objects in dimension-major columns of one
//!   sequential segment and checks every object with early exit on the
//!   first failing dimension. On disk it benefits from a single seek and
//!   pure sequential transfer, which is why it is such a strong baseline
//!   in high dimensions.
//! * [`RStarTree`] — a from-scratch R*-tree (Beckmann et al., SIGMOD 1990):
//!   ChooseSubtree with minimum overlap enlargement, forced reinsertion,
//!   topological split (minimum margin axis, minimum overlap distribution),
//!   and deletion with tree condensation. Page-sized nodes (16 KiB in the
//!   paper) determine fan-out from the dimensionality.

mod rstar;
mod seqscan;

use acx_geom::scan::ScanScratch;
use acx_geom::SpatialQuery;
use acx_storage::QueryResult;

pub use rstar::{RStarConfig, RStarTree};
pub use seqscan::SeqScan;

/// Shared batch query API of the read-only baselines, mirroring
/// `acx_core::AdaptiveClusterIndex::execute_batch`: results come back in
/// query order and are identical to executing the queries one by one;
/// only wall-clock changes with `threads`.
///
/// The baselines record no adaptive statistics, so batching is pure
/// fan-out: queries are split into `threads` contiguous chunks, each
/// chunk served by one scoped worker reusing one kernel scratch.
pub trait BatchExecute {
    /// Executes `queries` with `threads` worker threads, returning one
    /// result per query in query order.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or on query dimensionality mismatch.
    fn execute_batch(&self, queries: &[SpatialQuery], threads: usize) -> Vec<QueryResult>;
}

/// Fans `queries` across `threads` scoped workers, each running `exec`
/// with a worker-local kernel scratch.
fn batch_with_scratch<F>(queries: &[SpatialQuery], threads: usize, exec: F) -> Vec<QueryResult>
where
    F: Fn(&SpatialQuery, &mut ScanScratch) -> QueryResult + Sync,
{
    assert!(threads > 0, "need at least one thread");
    if threads == 1 || queries.len() < 2 {
        let mut scratch = ScanScratch::new();
        return queries.iter().map(|q| exec(q, &mut scratch)).collect();
    }
    let chunk = queries.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|chunk_queries| {
                let exec = &exec;
                scope.spawn(move || {
                    let mut scratch = ScanScratch::new();
                    chunk_queries
                        .iter()
                        .map(|q| exec(q, &mut scratch))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("batch worker panicked"))
            .collect()
    })
}

impl BatchExecute for SeqScan {
    fn execute_batch(&self, queries: &[SpatialQuery], threads: usize) -> Vec<QueryResult> {
        batch_with_scratch(queries, threads, |q, scratch| self.execute_with(q, scratch))
    }
}

impl BatchExecute for RStarTree {
    fn execute_batch(&self, queries: &[SpatialQuery], threads: usize) -> Vec<QueryResult> {
        batch_with_scratch(queries, threads, |q, scratch| self.execute_with(q, scratch))
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use acx_geom::{HyperRect, ObjectId};
    use acx_storage::StorageScenario;

    fn queries() -> Vec<SpatialQuery> {
        (0..37)
            .map(|k| {
                let c = (k % 10) as f32 / 10.0;
                match k % 3 {
                    0 => SpatialQuery::point_enclosing(vec![c, c]),
                    1 => SpatialQuery::intersection(
                        HyperRect::from_bounds(&[c, 0.0], &[(c + 0.2).min(1.0), 1.0]).unwrap(),
                    ),
                    _ => SpatialQuery::containment(HyperRect::unit(2)),
                }
            })
            .collect()
    }

    fn objects() -> Vec<(ObjectId, HyperRect)> {
        (0..500u32)
            .map(|i| {
                let lo = (i % 97) as f32 / 100.0;
                let hi = (lo + 0.02 + (i % 7) as f32 / 20.0).min(1.0);
                (
                    ObjectId(i),
                    HyperRect::from_bounds(&[lo, 1.0 - hi], &[hi, 1.0 - lo]).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn batch_matches_one_by_one_execution_for_both_baselines() {
        let mut ss = SeqScan::new(2, StorageScenario::Memory);
        let mut rs = RStarTree::new(RStarConfig {
            page_size: 512,
            ..RStarConfig::memory(2)
        });
        for (id, rect) in objects() {
            ss.insert(id, &rect);
            rs.insert(id, &rect);
        }
        let qs = queries();
        for threads in [1usize, 3, 8] {
            for (one_by_one, batched) in [
                (
                    qs.iter().map(|q| ss.execute(q)).collect::<Vec<_>>(),
                    ss.execute_batch(&qs, threads),
                ),
                (
                    qs.iter().map(|q| rs.execute(q)).collect::<Vec<_>>(),
                    rs.execute_batch(&qs, threads),
                ),
            ] {
                assert_eq!(one_by_one.len(), batched.len());
                for (a, b) in one_by_one.iter().zip(&batched) {
                    assert_eq!(a.matches, b.matches, "threads={threads}");
                    assert_eq!(a.metrics.stats, b.metrics.stats, "threads={threads}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn batch_rejects_zero_threads() {
        let ss = SeqScan::new(2, StorageScenario::Memory);
        ss.execute_batch(&queries(), 0);
    }
}
