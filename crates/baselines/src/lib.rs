//! Competitor access methods from the paper's evaluation (§7):
//! **Sequential Scan** and the **R*-tree**.
//!
//! Both fill the same [`acx_storage::AccessStats`] counters as the
//! adaptive clustering index, so the experiment harness prices all three
//! methods with one cost model per storage scenario.
//!
//! * [`SeqScan`] — stores all objects in one sequential segment and checks
//!   every object with early exit on the first failing dimension. On disk
//!   it benefits from a single seek and pure sequential transfer, which is
//!   why it is such a strong baseline in high dimensions.
//! * [`RStarTree`] — a from-scratch R*-tree (Beckmann et al., SIGMOD 1990):
//!   ChooseSubtree with minimum overlap enlargement, forced reinsertion,
//!   topological split (minimum margin axis, minimum overlap distribution),
//!   and deletion with tree condensation. Page-sized nodes (16 KiB in the
//!   paper) determine fan-out from the dimensionality.

mod rstar;
mod seqscan;

pub use rstar::{RStarConfig, RStarTree};
pub use seqscan::SeqScan;
