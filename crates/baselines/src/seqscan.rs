use std::time::Instant;

use acx_geom::scan::{scan_columns, PairedColumns, ScanScratch};
use acx_geom::{object_size_bytes, HyperRect, ObjectId, Scalar, SpatialQuery};
use acx_storage::{AccessStats, CostModel, QueryMetrics, QueryResult, StorageScenario};

/// Sequential Scan baseline (paper §7.1).
///
/// The whole database is one sequential segment; every query verifies
/// every object. Quantitatively expensive but with perfect locality: on
/// disk it pays a single seek plus a sustained sequential transfer, which
/// makes it the reference point in high-dimensional spaces.
///
/// Coordinates are stored in dimension-major columns and verified by the
/// same batch kernel ([`acx_geom::scan::scan_columns`]) as the adaptive
/// index's cluster exploration, so the benchmark comparison stays
/// apples-to-apples at the verification level. The paper's footnote 4 is
/// reproduced faithfully: an object stops being counted as soon as one
/// dimension fails the selection, so the *verified* byte count (and the
/// in-memory execution time) grows as query selectivity decreases —
/// bit-identical to object-at-a-time verification.
pub struct SeqScan {
    dims: usize,
    ids: Vec<u32>,
    /// Dimension-major columns: `cols[2d]` = lower bounds of dimension
    /// `d`, `cols[2d + 1]` = upper bounds, each one scalar per object.
    cols: Vec<Vec<Scalar>>,
    model: CostModel,
}

impl SeqScan {
    /// Creates an empty scan baseline priced for the given scenario on
    /// the paper's reference platform.
    pub fn new(dims: usize, scenario: StorageScenario) -> Self {
        assert!(dims > 0, "dims must be positive");
        Self {
            dims,
            ids: Vec::new(),
            cols: vec![Vec::new(); 2 * dims],
            model: CostModel::new(Default::default(), scenario, object_size_bytes(dims)),
        }
    }

    /// Creates a scan baseline with an explicit cost model.
    pub fn with_model(dims: usize, model: CostModel) -> Self {
        assert!(dims > 0, "dims must be positive");
        Self {
            dims,
            ids: Vec::new(),
            cols: vec![Vec::new(); 2 * dims],
            model,
        }
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Dimensionality of stored objects.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The cost model pricing this baseline.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Appends an object.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle dimensionality differs from the store's.
    pub fn insert(&mut self, id: ObjectId, rect: &HyperRect) {
        assert_eq!(rect.dims(), self.dims, "dimensionality mismatch");
        self.ids.push(id.raw());
        for d in 0..self.dims {
            let iv = rect.interval(d);
            self.cols[2 * d].push(iv.lo());
            self.cols[2 * d + 1].push(iv.hi());
        }
    }

    /// Removes an object by id. Returns whether it was present.
    pub fn remove(&mut self, id: ObjectId) -> bool {
        let Some(idx) = self.ids.iter().position(|&o| o == id.raw()) else {
            return false;
        };
        self.ids.swap_remove(idx);
        for col in &mut self.cols {
            col.swap_remove(idx);
        }
        true
    }

    /// Executes a spatial selection by scanning the entire database.
    ///
    /// # Panics
    ///
    /// Panics if the query dimensionality differs from the store's.
    pub fn execute(&self, query: &SpatialQuery) -> QueryResult {
        let mut scratch = ScanScratch::new();
        self.execute_with(query, &mut scratch)
    }

    /// [`SeqScan::execute`] through a reusable kernel scratch: a
    /// warmed-up scratch lets repeated scans run without growing the
    /// survivors bitmask, leaving the returned match vector as the only
    /// per-query allocation.
    ///
    /// # Panics
    ///
    /// Panics if the query dimensionality differs from the store's.
    pub fn execute_with(&self, query: &SpatialQuery, scratch: &mut ScanScratch) -> QueryResult {
        assert_eq!(query.dims(), self.dims, "dimensionality mismatch");
        let started = Instant::now();
        let n = self.ids.len();
        let outcome = scan_columns(query, &PairedColumns::new(&self.cols), scratch);
        let stats = AccessStats {
            signature_checks: 0,
            clusters_explored: 1,
            seeks: 1,
            objects_verified: n as u64,
            verified_bytes: outcome.verified_bytes(),
            transfer_bytes: (n * self.model.object_bytes()) as u64,
        };
        let matches = scratch
            .matches()
            .iter()
            .map(|&idx| ObjectId(self.ids[idx as usize]))
            .collect();
        let priced_ms = self.model.price(&stats);
        QueryResult {
            matches,
            metrics: QueryMetrics {
                stats,
                priced_ms,
                wall: started.elapsed(),
            },
        }
    }

    /// Executes a spatial selection scanning the database with `threads`
    /// worker threads over disjoint chunks of every column.
    ///
    /// A modern-hardware extension (the paper's 2004 platform was
    /// single-core): results and access counters are identical to
    /// [`SeqScan::execute`]; the priced cost model still reflects the
    /// single-stream device of the paper, so only wall-clock improves.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or on query dimensionality mismatch.
    pub fn execute_parallel(&self, query: &SpatialQuery, threads: usize) -> QueryResult {
        assert!(threads > 0, "need at least one thread");
        assert_eq!(query.dims(), self.dims, "dimensionality mismatch");
        if threads == 1 || self.ids.len() < threads * 64 {
            return self.execute(query);
        }
        let started = Instant::now();
        let n = self.ids.len();
        let chunk = n.div_ceil(threads);
        let results: Vec<(Vec<ObjectId>, u64)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                if lo >= hi {
                    break;
                }
                handles.push(scope.spawn(move || {
                    let mut scratch = ScanScratch::new();
                    let view = PairedColumns::slice(&self.cols, lo, hi - lo);
                    let outcome = scan_columns(query, &view, &mut scratch);
                    let matches = scratch
                        .matches()
                        .iter()
                        .map(|&idx| ObjectId(self.ids[lo + idx as usize]))
                        .collect();
                    (matches, outcome.verified_bytes())
                }));
            }
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        let mut stats = AccessStats {
            signature_checks: 0,
            clusters_explored: 1,
            seeks: 1,
            objects_verified: n as u64,
            transfer_bytes: (n * self.model.object_bytes()) as u64,
            ..AccessStats::new()
        };
        let mut matches = Vec::new();
        for (m, vb) in results {
            stats.verified_bytes += vb;
            matches.extend(m);
        }
        let priced_ms = self.model.price(&stats);
        QueryResult {
            matches,
            metrics: QueryMetrics {
                stats,
                priced_ms,
                wall: started.elapsed(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(lo: &[Scalar], hi: &[Scalar]) -> HyperRect {
        HyperRect::from_bounds(lo, hi).unwrap()
    }

    fn populated() -> SeqScan {
        let mut s = SeqScan::new(2, StorageScenario::Memory);
        s.insert(ObjectId(1), &rect(&[0.1, 0.1], &[0.3, 0.3]));
        s.insert(ObjectId(2), &rect(&[0.6, 0.6], &[0.8, 0.8]));
        s.insert(ObjectId(3), &rect(&[0.0, 0.0], &[1.0, 1.0]));
        s
    }

    #[test]
    fn scan_finds_matches_for_all_relations() {
        let s = populated();
        let inter = s.execute(&SpatialQuery::intersection(rect(&[0.2, 0.2], &[0.25, 0.25])));
        let mut got = inter.matches;
        got.sort_unstable();
        assert_eq!(got, vec![ObjectId(1), ObjectId(3)]);

        let cont = s.execute(&SpatialQuery::containment(rect(&[0.5, 0.5], &[0.9, 0.9])));
        assert_eq!(cont.matches, vec![ObjectId(2)]);

        let encl = s.execute(&SpatialQuery::enclosure(rect(&[0.05, 0.05], &[0.9, 0.9])));
        assert_eq!(encl.matches, vec![ObjectId(3)]);

        let point = s.execute(&SpatialQuery::point_enclosing(vec![0.7, 0.7]));
        let mut got = point.matches;
        got.sort_unstable();
        assert_eq!(got, vec![ObjectId(2), ObjectId(3)]);
    }

    #[test]
    fn every_object_is_verified() {
        let s = populated();
        let r = s.execute(&SpatialQuery::point_enclosing(vec![0.0, 0.0]));
        assert_eq!(r.metrics.stats.objects_verified, 3);
        assert_eq!(r.metrics.stats.clusters_explored, 1);
        assert_eq!(r.metrics.stats.seeks, 1);
        assert_eq!(r.metrics.stats.transfer_bytes, 3 * 20);
    }

    #[test]
    fn early_exit_reduces_verified_bytes() {
        let mut s = SeqScan::new(4, StorageScenario::Memory);
        // Object failing in dimension 1 for the point below.
        s.insert(ObjectId(1), &rect(&[0.8, 0.0, 0.0, 0.0], &[0.9, 1.0, 1.0, 1.0]));
        // Object matching in all 4 dimensions.
        s.insert(ObjectId(2), &rect(&[0.0; 4], &[1.0; 4]));
        let r = s.execute(&SpatialQuery::point_enclosing(vec![0.1; 4]));
        // 4 (id) + 8·1 for the early reject, 4 + 8·4 for the full check.
        assert_eq!(r.metrics.stats.verified_bytes, (4 + 8) + (4 + 32));
    }

    #[test]
    fn remove_swaps_and_truncates() {
        let mut s = populated();
        assert!(s.remove(ObjectId(1)));
        assert!(!s.remove(ObjectId(1)));
        assert_eq!(s.len(), 2);
        let r = s.execute(&SpatialQuery::point_enclosing(vec![0.2, 0.2]));
        assert_eq!(r.matches, vec![ObjectId(3)]);
    }

    #[test]
    fn disk_pricing_includes_full_transfer() {
        let mut s = SeqScan::new(16, StorageScenario::Disk);
        for i in 0..1000 {
            s.insert(ObjectId(i), &HyperRect::unit(16));
        }
        let r = s.execute(&SpatialQuery::point_enclosing(vec![0.5; 16]));
        // 1000 objects × 132 B at ≈ 4.77e-5 ms/B plus one 15 ms seek.
        assert!(r.metrics.priced_ms > 15.0 + 132_000.0 * 4.5e-5);
        assert_eq!(r.metrics.stats.transfer_bytes, 132_000);
    }

    #[test]
    fn empty_scan_returns_nothing() {
        let s = SeqScan::new(3, StorageScenario::Memory);
        assert!(s.is_empty());
        let r = s.execute(&SpatialQuery::point_enclosing(vec![0.5; 3]));
        assert!(r.matches.is_empty());
        assert_eq!(r.metrics.stats.objects_verified, 0);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn insert_rejects_wrong_dims() {
        let mut s = SeqScan::new(3, StorageScenario::Memory);
        s.insert(ObjectId(1), &HyperRect::unit(2));
    }

    #[test]
    fn execute_with_reuses_the_scratch() {
        let s = populated();
        let mut scratch = ScanScratch::new();
        let q = SpatialQuery::point_enclosing(vec![0.7, 0.7]);
        let a = s.execute_with(&q, &mut scratch);
        let b = s.execute_with(&q, &mut scratch);
        assert_eq!(a.matches, b.matches);
        assert_eq!(a.metrics.stats, b.metrics.stats);
    }

    #[test]
    fn parallel_scan_matches_serial() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        let dims = 4;
        let mut s = SeqScan::new(dims, StorageScenario::Memory);
        for i in 0..5000u32 {
            let mut lo = Vec::with_capacity(dims);
            let mut hi = Vec::with_capacity(dims);
            for _ in 0..dims {
                let a: f32 = rng.gen_range(0.0..=1.0);
                let b: f32 = rng.gen_range(0.0..=1.0);
                lo.push(a.min(b));
                hi.push(a.max(b));
            }
            s.insert(ObjectId(i), &rect(&lo, &hi));
        }
        for threads in [1usize, 2, 4, 7] {
            let q = SpatialQuery::intersection(rect(&[0.4; 4], &[0.6; 4]));
            let serial = s.execute(&q);
            let parallel = s.execute_parallel(&q, threads);
            let mut a = serial.matches.clone();
            let mut b = parallel.matches.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "threads={threads}");
            assert_eq!(
                serial.metrics.stats.verified_bytes,
                parallel.metrics.stats.verified_bytes
            );
            assert_eq!(
                serial.metrics.stats.objects_verified,
                parallel.metrics.stats.objects_verified
            );
        }
    }

    #[test]
    fn parallel_scan_on_tiny_input_falls_back_to_serial() {
        let s = populated();
        let q = SpatialQuery::point_enclosing(vec![0.2, 0.2]);
        let r = s.execute_parallel(&q, 8);
        assert_eq!(r.metrics.stats.objects_verified, 3);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn parallel_scan_rejects_zero_threads() {
        let s = populated();
        s.execute_parallel(&SpatialQuery::point_enclosing(vec![0.5, 0.5]), 0);
    }
}
