//! R*-tree behavioral tests: correctness against Sequential Scan (the
//! trivially correct reference), structural invariants through heavy
//! insert/delete churn, page-capacity arithmetic from the paper, and
//! pruning effectiveness.

use acx_baselines::{RStarConfig, RStarTree, SeqScan};
use acx_geom::{HyperRect, ObjectId, Scalar, SpatialQuery};
use acx_storage::StorageScenario;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rect(lo: &[Scalar], hi: &[Scalar]) -> HyperRect {
    HyperRect::from_bounds(lo, hi).unwrap()
}

fn random_rect(rng: &mut StdRng, dims: usize) -> HyperRect {
    let mut lo = Vec::with_capacity(dims);
    let mut hi = Vec::with_capacity(dims);
    for _ in 0..dims {
        let a: f32 = rng.gen_range(0.0..=1.0);
        let b: f32 = rng.gen_range(0.0..=1.0);
        lo.push(a.min(b));
        hi.push(a.max(b));
    }
    rect(&lo, &hi)
}

fn small_rect(rng: &mut StdRng, dims: usize, extent: f32) -> HyperRect {
    let mut lo = Vec::with_capacity(dims);
    let mut hi = Vec::with_capacity(dims);
    for _ in 0..dims {
        let a: f32 = rng.gen_range(0.0..=1.0 - extent);
        lo.push(a);
        hi.push(a + extent);
    }
    rect(&lo, &hi)
}

fn sorted(mut v: Vec<ObjectId>) -> Vec<ObjectId> {
    v.sort_unstable();
    v
}

/// Small pages force deep trees, exercising splits and reinserts hard.
fn small_page_config(dims: usize) -> RStarConfig {
    RStarConfig {
        page_size: 256,
        ..RStarConfig::memory(dims)
    }
}

#[test]
fn page_capacity_matches_paper() {
    // Paper §7.1: with 16 KiB pages and 70 % utilization, a node holds
    // 86 objects at 16 dimensions and 35 at 40 dimensions.
    let c16 = RStarConfig::memory(16);
    assert_eq!(c16.entry_bytes(), 132);
    assert_eq!((c16.max_entries() as f64 * 0.7) as usize, 86);
    let c40 = RStarConfig::memory(40);
    assert_eq!(c40.entry_bytes(), 324);
    assert_eq!((c40.max_entries() as f64 * 0.7) as usize, 35);
}

#[test]
fn empty_tree_answers_empty() {
    let tree = RStarTree::new(RStarConfig::memory(3));
    assert!(tree.is_empty());
    assert_eq!(tree.height(), 1);
    assert_eq!(tree.node_count(), 1);
    let r = tree.execute(&SpatialQuery::point_enclosing(vec![0.5; 3]));
    assert!(r.matches.is_empty());
    tree.check_invariants().unwrap();
}

#[test]
fn agrees_with_seqscan_on_all_relations() {
    let mut rng = StdRng::seed_from_u64(101);
    let dims = 4;
    let mut tree = RStarTree::new(small_page_config(dims));
    let mut scan = SeqScan::new(dims, StorageScenario::Memory);
    for i in 0..2000u32 {
        let r = random_rect(&mut rng, dims);
        tree.insert(ObjectId(i), &r);
        scan.insert(ObjectId(i), &r);
    }
    tree.check_invariants().unwrap();
    assert!(tree.height() > 2, "small pages should force a deep tree");
    for k in 0..120 {
        let q = match k % 4 {
            0 => SpatialQuery::intersection(small_rect(&mut rng, dims, 0.15)),
            1 => SpatialQuery::containment(small_rect(&mut rng, dims, 0.5)),
            2 => SpatialQuery::enclosure(small_rect(&mut rng, dims, 0.02)),
            _ => SpatialQuery::point_enclosing(
                (0..dims).map(|_| rng.gen_range(0.0..=1.0)).collect(),
            ),
        };
        assert_eq!(
            sorted(tree.execute(&q).matches),
            sorted(scan.execute(&q).matches),
            "query {k} diverged"
        );
    }
}

#[test]
fn delete_then_queries_stay_correct() {
    let mut rng = StdRng::seed_from_u64(7);
    let dims = 3;
    let mut tree = RStarTree::new(small_page_config(dims));
    let mut objects: Vec<(u32, HyperRect)> = Vec::new();
    for i in 0..1200u32 {
        let r = random_rect(&mut rng, dims);
        tree.insert(ObjectId(i), &r);
        objects.push((i, r));
    }
    // Delete 60 % in random order.
    for _ in 0..720 {
        let k = rng.gen_range(0..objects.len());
        let (id, r) = objects.swap_remove(k);
        assert!(tree.remove(ObjectId(id), &r), "object {id} should exist");
    }
    assert_eq!(tree.len(), objects.len());
    tree.check_invariants().unwrap();
    let mut scan = SeqScan::new(dims, StorageScenario::Memory);
    for (id, r) in &objects {
        scan.insert(ObjectId(*id), r);
    }
    for _ in 0..60 {
        let q = SpatialQuery::intersection(small_rect(&mut rng, dims, 0.2));
        assert_eq!(sorted(tree.execute(&q).matches), sorted(scan.execute(&q).matches));
    }
}

#[test]
fn remove_missing_object_returns_false() {
    let mut tree = RStarTree::new(RStarConfig::memory(2));
    let r = rect(&[0.1, 0.1], &[0.2, 0.2]);
    tree.insert(ObjectId(1), &r);
    assert!(!tree.remove(ObjectId(2), &r));
    let other = rect(&[0.5, 0.5], &[0.6, 0.6]);
    assert!(!tree.remove(ObjectId(1), &other), "rect must match too");
    assert!(tree.remove(ObjectId(1), &r));
    assert!(tree.is_empty());
    tree.check_invariants().unwrap();
}

#[test]
fn delete_everything_collapses_tree() {
    let mut rng = StdRng::seed_from_u64(13);
    let dims = 2;
    let mut tree = RStarTree::new(small_page_config(dims));
    let mut objects = Vec::new();
    for i in 0..600u32 {
        let r = random_rect(&mut rng, dims);
        tree.insert(ObjectId(i), &r);
        objects.push((i, r));
    }
    for (id, r) in &objects {
        assert!(tree.remove(ObjectId(*id), r));
    }
    assert!(tree.is_empty());
    assert_eq!(tree.height(), 1);
    assert_eq!(tree.node_count(), 1);
    tree.check_invariants().unwrap();
}

#[test]
fn invariants_hold_through_mixed_churn() {
    let mut rng = StdRng::seed_from_u64(23);
    let dims = 3;
    let mut tree = RStarTree::new(small_page_config(dims));
    let mut live: Vec<(u32, HyperRect)> = Vec::new();
    let mut next = 0u32;
    for _ in 0..10 {
        for _ in 0..200 {
            let r = random_rect(&mut rng, dims);
            tree.insert(ObjectId(next), &r);
            live.push((next, r));
            next += 1;
        }
        for _ in 0..120 {
            if live.is_empty() {
                break;
            }
            let k = rng.gen_range(0..live.len());
            let (id, r) = live.swap_remove(k);
            assert!(tree.remove(ObjectId(id), &r));
        }
        tree.check_invariants().unwrap();
        assert_eq!(tree.len(), live.len());
    }
}

#[test]
fn pruning_beats_full_scan_on_selective_queries() {
    let mut rng = StdRng::seed_from_u64(3);
    let dims = 2; // low dimensionality: the R*-tree's favourable regime
    let mut tree = RStarTree::new(RStarConfig::memory(dims));
    for i in 0..20_000u32 {
        // Small objects spread across space.
        let r = small_rect(&mut rng, dims, 0.01);
        tree.insert(ObjectId(i), &r);
    }
    let q = SpatialQuery::intersection(small_rect(&mut rng, dims, 0.02));
    let res = tree.execute(&q);
    let frac = res.metrics.stats.objects_verified as f64 / 20_000.0;
    assert!(
        frac < 0.2,
        "2-d selective query should prune most leaves, verified {frac:.2}"
    );
}

#[test]
fn node_count_grows_with_dimensionality_at_fixed_cardinality() {
    // Same object count, higher dimensionality → smaller fan-out → more
    // nodes (paper Fig. 8 table: RS nodes grow 12k → 31k from 16d to 40d).
    let count_nodes = |dims: usize| {
        let mut rng = StdRng::seed_from_u64(9);
        let mut tree = RStarTree::new(RStarConfig::memory(dims));
        for i in 0..3000u32 {
            tree.insert(ObjectId(i), &random_rect(&mut rng, dims));
        }
        tree.check_invariants().unwrap();
        tree.node_count()
    };
    let n16 = count_nodes(16);
    let n40 = count_nodes(40);
    assert!(n40 > n16, "node count should grow: {n16} vs {n40}");
}

#[test]
fn disk_pricing_charges_per_node_seek() {
    let mut rng = StdRng::seed_from_u64(4);
    let dims = 8;
    let mut tree = RStarTree::new(RStarConfig::disk(dims));
    for i in 0..5000u32 {
        tree.insert(ObjectId(i), &random_rect(&mut rng, dims));
    }
    let q = SpatialQuery::intersection(small_rect(&mut rng, dims, 0.3));
    let res = tree.execute(&q);
    let nodes = res.metrics.stats.clusters_explored;
    assert!(nodes >= 1);
    assert_eq!(res.metrics.stats.seeks, nodes);
    // Each accessed node costs at least one 15 ms seek.
    assert!(res.metrics.priced_ms >= nodes as f64 * 15.0);
}

#[test]
fn duplicate_rectangles_are_supported() {
    let mut tree = RStarTree::new(small_page_config(2));
    let r = rect(&[0.4, 0.4], &[0.5, 0.5]);
    for i in 0..300u32 {
        tree.insert(ObjectId(i), &r);
    }
    tree.check_invariants().unwrap();
    let res = tree.execute(&SpatialQuery::point_enclosing(vec![0.45, 0.45]));
    assert_eq!(res.matches.len(), 300);
    // Remove one specific duplicate.
    assert!(tree.remove(ObjectId(150), &r));
    let res = tree.execute(&SpatialQuery::point_enclosing(vec![0.45, 0.45]));
    assert_eq!(res.matches.len(), 299);
    assert!(!res.matches.contains(&ObjectId(150)));
}

#[test]
#[should_panic(expected = "dimensionality mismatch")]
fn insert_rejects_wrong_dims() {
    let mut tree = RStarTree::new(RStarConfig::memory(3));
    tree.insert(ObjectId(1), &HyperRect::unit(2));
}

#[test]
fn bulk_load_agrees_with_insertion_built_tree() {
    let mut rng = StdRng::seed_from_u64(88);
    let dims = 4;
    let items: Vec<(ObjectId, HyperRect)> = (0..3000u32)
        .map(|i| (ObjectId(i), random_rect(&mut rng, dims)))
        .collect();
    let bulk = RStarTree::bulk_load(small_page_config(dims), &items);
    bulk.check_invariants().unwrap();
    assert_eq!(bulk.len(), 3000);
    let mut scan = SeqScan::new(dims, StorageScenario::Memory);
    for (id, r) in &items {
        scan.insert(*id, r);
    }
    for _ in 0..60 {
        let q = SpatialQuery::intersection(small_rect(&mut rng, dims, 0.15));
        assert_eq!(sorted(bulk.execute(&q).matches), sorted(scan.execute(&q).matches));
    }
}

#[test]
fn bulk_load_supports_mutation_afterwards() {
    let mut rng = StdRng::seed_from_u64(12);
    let dims = 3;
    let mut items: Vec<(ObjectId, HyperRect)> = (0..1500u32)
        .map(|i| (ObjectId(i), random_rect(&mut rng, dims)))
        .collect();
    let mut tree = RStarTree::bulk_load(small_page_config(dims), &items);
    // Insert more, delete some, then validate against a fresh scan.
    for i in 1500..1800u32 {
        let r = random_rect(&mut rng, dims);
        tree.insert(ObjectId(i), &r);
        items.push((ObjectId(i), r));
    }
    for _ in 0..400 {
        let k = rng.gen_range(0..items.len());
        let (id, r) = items.swap_remove(k);
        assert!(tree.remove(id, &r));
    }
    tree.check_invariants().unwrap();
    let mut scan = SeqScan::new(dims, StorageScenario::Memory);
    for (id, r) in &items {
        scan.insert(*id, r);
    }
    for _ in 0..40 {
        let q = SpatialQuery::intersection(small_rect(&mut rng, dims, 0.2));
        assert_eq!(sorted(tree.execute(&q).matches), sorted(scan.execute(&q).matches));
    }
}

#[test]
fn bulk_load_empty_and_tiny_inputs() {
    let empty = RStarTree::bulk_load(RStarConfig::memory(2), &[]);
    assert!(empty.is_empty());
    empty.check_invariants().unwrap();
    let one = RStarTree::bulk_load(
        RStarConfig::memory(2),
        &[(ObjectId(1), HyperRect::unit(2))],
    );
    assert_eq!(one.len(), 1);
    assert_eq!(one.height(), 1);
    one.check_invariants().unwrap();
}

#[test]
fn bulk_load_produces_fewer_nodes_than_insertion() {
    // STR packs pages ~full, dynamic insertion leaves slack.
    let mut rng = StdRng::seed_from_u64(66);
    let dims = 4;
    let items: Vec<(ObjectId, HyperRect)> = (0..4000u32)
        .map(|i| (ObjectId(i), random_rect(&mut rng, dims)))
        .collect();
    let bulk = RStarTree::bulk_load(small_page_config(dims), &items);
    let mut dynamic = RStarTree::new(small_page_config(dims));
    for (id, r) in &items {
        dynamic.insert(*id, r);
    }
    assert!(
        bulk.node_count() <= dynamic.node_count(),
        "bulk {} vs dynamic {}",
        bulk.node_count(),
        dynamic.node_count()
    );
}
